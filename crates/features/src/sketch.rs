//! Bottom-k MinHash sketches for cheap containment pre-checks.
//!
//! Footnote 2 of the paper prunes join candidates with "sketch-based
//! containment-checks" before featurising. A bottom-k sketch keeps the `k`
//! smallest 64-bit hashes of a value set; the Jaccard similarity of two sets
//! is estimated from the overlap of their merged bottom-k, and containment
//! follows from Jaccard plus the (known) set sizes.

use serde::{Deserialize, Serialize};

/// A bottom-k sketch of a set of hashed values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHashSketch {
    k: usize,
    /// The `k` smallest hashes, sorted ascending.
    mins: Vec<u64>,
    /// Exact distinct count of the underlying set.
    cardinality: usize,
}

impl MinHashSketch {
    /// Build from an iterator of value hashes (callers hash [`Value`]s with
    /// their `fingerprint`).
    ///
    /// [`Value`]: autosuggest_dataframe::Value
    pub fn from_hashes<I: IntoIterator<Item = u64>>(hashes: I, k: usize) -> Self {
        assert!(k > 0);
        let mut all: Vec<u64> = hashes.into_iter().collect();
        all.sort_unstable();
        all.dedup();
        let cardinality = all.len();
        all.truncate(k);
        MinHashSketch { k, mins: all, cardinality }
    }

    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Estimate the Jaccard similarity with another sketch (exact when both
    /// sets fit within `k`).
    pub fn jaccard(&self, other: &MinHashSketch) -> f64 {
        assert_eq!(self.k, other.k, "sketches must share k");
        if self.cardinality == 0 && other.cardinality == 0 {
            return 1.0;
        }
        if self.mins.is_empty() || other.mins.is_empty() {
            return 0.0;
        }
        // Merge the two bottom-k lists, keep the k smallest distinct hashes
        // of the union, and count how many appear in both sketches.
        let mut merged: Vec<u64> = self
            .mins
            .iter()
            .chain(other.mins.iter())
            .copied()
            .collect();
        merged.sort_unstable();
        merged.dedup();
        merged.truncate(self.k);
        let both = merged
            .iter()
            .filter(|h| {
                self.mins.binary_search(h).is_ok() && other.mins.binary_search(h).is_ok()
            })
            .count();
        both as f64 / merged.len() as f64
    }

    /// Estimate the containment of `self`'s set within `other`'s set:
    /// `|A ∩ B| / |A|`, derived from the Jaccard estimate and exact
    /// cardinalities.
    pub fn containment_in(&self, other: &MinHashSketch) -> f64 {
        if self.cardinality == 0 {
            return 1.0;
        }
        let j = self.jaccard(other);
        // |A∩B| = J/(1+J) · (|A|+|B|)
        let inter = j / (1.0 + j) * (self.cardinality + other.cardinality) as f64;
        (inter / self.cardinality as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(vals: std::ops::Range<u64>, k: usize) -> MinHashSketch {
        MinHashSketch::from_hashes(vals.map(mix), k)
    }

    /// A cheap 64-bit mixer so consecutive integers behave like hashes.
    fn mix(x: u64) -> u64 {
        let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = sketch(0..1000, 64);
        let b = sketch(0..1000, 64);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.containment_in(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_zero() {
        let a = sketch(0..500, 64);
        let b = sketch(10_000..10_500, 64);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.containment_in(&b), 0.0);
    }

    #[test]
    fn small_sets_are_exact() {
        // Both sets fit inside k, so the estimate is exact: |∩|=5, |∪|=15.
        let a = sketch(0..10, 64);
        let b = sketch(5..15, 64);
        assert!((a.jaccard(&b) - 5.0 / 15.0).abs() < 1e-12);
        assert!((a.containment_in(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn large_set_estimate_is_close() {
        // 50% overlap on sets much larger than k.
        let a = sketch(0..20_000, 128);
        let b = sketch(10_000..30_000, 128);
        let true_j = 10_000.0 / 30_000.0;
        assert!((a.jaccard(&b) - true_j).abs() < 0.12, "estimate {}", a.jaccard(&b));
    }

    #[test]
    fn subset_containment_near_one() {
        let a = sketch(0..100, 64);
        let b = sketch(0..10_000, 64);
        assert!(a.containment_in(&b) > 0.6, "got {}", a.containment_in(&b));
    }

    #[test]
    fn empty_set_edge_cases() {
        let e = MinHashSketch::from_hashes(std::iter::empty(), 16);
        let a = sketch(0..10, 16);
        assert_eq!(e.jaccard(&e), 1.0);
        assert_eq!(e.containment_in(&a), 1.0);
        assert_eq!(a.jaccard(&e), 0.0);
    }

    #[test]
    #[should_panic(expected = "share k")]
    fn mismatched_k_panics() {
        let a = MinHashSketch::from_hashes([1, 2], 4);
        let b = MinHashSketch::from_hashes([1, 2], 8);
        a.jaccard(&b);
    }
}
