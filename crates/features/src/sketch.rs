//! MinHash sketches — moved to `autosuggest-cache` so the content-addressed
//! column cache can intern sketches alongside the other per-column
//! statistics. Re-exported here so existing `features::sketch` callers keep
//! compiling unchanged.

pub use autosuggest_cache::MinHashSketch;
