//! Feature extraction for the Auto-Suggest predictors.
//!
//! Implements the exact feature groups §4 of the paper enumerates:
//!
//! * **Join** (§4.1): distinct-value-ratio, value-overlap (Jaccard
//!   similarity + containment both ways), value-range-overlap, column value
//!   types, left-ness (absolute + relative), sorted-ness,
//!   single-column-candidate, and table-level statistics.
//! * **GroupBy** (§4.2): distinct-value count/ratio, column dtype, left-ness,
//!   emptiness, value-range, peak-frequency, and column-name frequency
//!   priors learned from training data.
//! * **Affinity** (§4.3): emptiness-reduction-ratio and
//!   column-position-difference for pairs of dimension columns, feeding the
//!   AMPT/CMUT graphs.
//!
//! Candidate enumeration for joins — with the paper's type-mismatch and
//! sketch-based containment pruning (footnote 2) — lives in
//! [`candidates`]; the MinHash-style sketch in [`sketch`] (re-exported from
//! `autosuggest-cache`, which interns sketches and column statistics in a
//! content-addressed cache the featurisers fetch through).

pub mod affinity;
pub mod candidates;
pub mod groupby;
pub mod join;
pub mod sketch;

pub use affinity::{affinity_features, AffinityFeatures, AFFINITY_FEATURE_NAMES};
pub use candidates::{enumerate_join_candidates, CandidateParams, JoinCandidate};
pub use groupby::{
    groupby_features, groupby_features_from_artifacts, ColumnNamePrior, GroupByFeatures,
    GROUPBY_FEATURE_NAMES,
};
pub use join::{
    join_features, join_features_batch, JoinFeatures, JOIN_FEATURE_GROUPS, JOIN_FEATURE_NAMES,
};
pub use sketch::MinHashSketch;
