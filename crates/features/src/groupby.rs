//! Per-column GroupBy/Aggregation features (§4.2) — the groups of Table 7.

use autosuggest_cache::{ColumnArtifacts, ColumnCache};
use autosuggest_dataframe::{Column, DType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Names of the GroupBy feature vector entries, in extraction order.
pub const GROUPBY_FEATURE_NAMES: [&str; 15] = [
    "distinct_count_log",
    "distinct_ratio",
    "dtype_string",
    "dtype_int",
    "dtype_float",
    "dtype_date",
    "dtype_bool",
    "leftness_abs",
    "leftness_rel",
    "emptiness",
    "value_range_log",
    "distinct_over_range",
    "peak_freq_abs_log",
    "peak_freq_ratio",
    "name_prior",
];

/// Feature-index → group mapping for Table 7 importances.
pub const GROUPBY_FEATURE_GROUPS: [(usize, &str); 15] = [
    (0, "distinct-val"),
    (1, "distinct-val"),
    (2, "col-type"),
    (3, "col-type"),
    (4, "col-type"),
    (5, "col-type"),
    (6, "col-type"),
    (7, "left-ness"),
    (8, "left-ness"),
    (9, "emptiness"),
    (10, "val-range"),
    (11, "val-range"),
    (12, "peak-freq"),
    (13, "peak-freq"),
    (14, "col-name-freq"),
];

/// Column-name prior learned from training data: how often a (lowercased)
/// name was used as a GroupBy dimension vs. an Aggregation measure.
///
/// This is the paper's *col-name-freq* feature: "given the name of a column
/// C, we look it up in the training data (without this C)" — the lookup
/// excludes the test column by construction because the prior is fit on the
/// training split only.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColumnNamePrior {
    counts: HashMap<String, (u64, u64)>,
}

impl ColumnNamePrior {
    /// Record one observed usage of `name`.
    pub fn observe(&mut self, name: &str, used_as_groupby: bool) {
        let slot = self.counts.entry(name.to_lowercase()).or_insert((0, 0));
        if used_as_groupby {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }

    /// Smoothed log-odds that `name` is a GroupBy column; 0 for unseen
    /// names (no prior either way).
    pub fn log_odds(&self, name: &str) -> f64 {
        match self.counts.get(&name.to_lowercase()) {
            None => 0.0,
            Some(&(g, a)) => ((g as f64 + 0.5) / (a as f64 + 0.5)).ln(),
        }
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// The extracted per-column feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupByFeatures {
    pub values: Vec<f64>,
}

impl GroupByFeatures {
    pub fn get(&self, name: &str) -> f64 {
        let idx = GROUPBY_FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown groupby feature {name:?}"));
        self.values[idx]
    }
}

/// Extract the §4.2 feature vector for column `col` at position `position`
/// of a table with `num_columns` columns.
///
/// Column statistics are fetched through the content-addressed cache — the
/// same column featurised repeatedly (candidate sweeps, training vs.
/// evaluation passes) computes its artifacts once. The name and position
/// inputs are not part of the cached content, so they are passed alongside.
pub fn groupby_features(
    col: &Column,
    position: usize,
    num_columns: usize,
    prior: &ColumnNamePrior,
) -> GroupByFeatures {
    let art = ColumnCache::global().artifacts(col);
    groupby_features_from_artifacts(col.name(), &art, position, num_columns, prior)
}

/// The featuriser body, operating on pre-computed [`ColumnArtifacts`]
/// (exposed so batched callers can warm artifacts once and featurise many
/// positions without re-hashing the column).
pub fn groupby_features_from_artifacts(
    name: &str,
    art: &ColumnArtifacts,
    position: usize,
    num_columns: usize,
    prior: &ColumnNamePrior,
) -> GroupByFeatures {
    let distinct = art.distinct_count();
    let dtype = art.dtype();
    let one = |d: DType| if dtype == d { 1.0 } else { 0.0 };

    let (range_log, distinct_over_range) = match art.min_max() {
        Some((lo, hi)) => {
            let span = (hi - lo).max(0.0);
            (
                (1.0 + span).ln(),
                if span > 0.0 { (distinct as f64 / span).min(10.0) } else { 10.0 },
            )
        }
        None => (0.0, 0.0),
    };

    let peak = art.peak_frequency();
    let rows = art.len().max(1);

    GroupByFeatures {
        values: vec![
            (1.0 + distinct as f64).ln(),
            art.distinct_ratio(),
            one(DType::Str),
            one(DType::Int),
            one(DType::Float),
            one(DType::Date),
            one(DType::Bool),
            position as f64,
            position as f64 / num_columns.max(1) as f64,
            art.null_fraction(),
            range_log,
            distinct_over_range,
            (1.0 + peak as f64).ln(),
            peak as f64 / rows as f64,
            prior.log_odds(name),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn str_col(name: &str, vals: &[&str]) -> Column {
        Column::new(name, vals.iter().map(|s| Value::Str((*s).into())).collect())
    }

    fn float_col(name: &str, vals: &[f64]) -> Column {
        Column::new(name, vals.iter().map(|&f| Value::Float(f)).collect())
    }

    #[test]
    fn dimension_column_profile() {
        let c = str_col("sector", &["a", "a", "b", "b", "b", "c"]);
        let f = groupby_features(&c, 0, 7, &ColumnNamePrior::default());
        assert_eq!(f.get("dtype_string"), 1.0);
        assert_eq!(f.get("dtype_float"), 0.0);
        assert!((f.get("distinct_ratio") - 0.5).abs() < 1e-12);
        assert!((f.get("peak_freq_ratio") - 0.5).abs() < 1e-12);
        assert_eq!(f.get("leftness_rel"), 0.0);
    }

    #[test]
    fn measure_column_profile() {
        let c = float_col("revenue", &[472.07, 489.22, 210.66, 271.73]);
        let f = groupby_features(&c, 6, 7, &ColumnNamePrior::default());
        assert_eq!(f.get("dtype_float"), 1.0);
        assert_eq!(f.get("distinct_ratio"), 1.0);
        assert!(f.get("leftness_rel") > 0.8);
        assert!(f.get("value_range_log") > 0.0);
    }

    #[test]
    fn year_column_small_range() {
        // Years: numeric but low-cardinality and dense in a tiny range —
        // the *value-range* signal the paper describes.
        let vals: Vec<Value> = (0..30).map(|i| Value::Int(2006 + i % 3)).collect();
        let c = Column::new("year", vals);
        let f = groupby_features(&c, 3, 7, &ColumnNamePrior::default());
        assert!(f.get("distinct_over_range") >= 1.0);
        assert!(f.get("distinct_ratio") < 0.2);
    }

    #[test]
    fn name_prior_learns_log_odds() {
        let mut prior = ColumnNamePrior::default();
        for _ in 0..9 {
            prior.observe("Year", true);
        }
        prior.observe("year", false);
        assert!(prior.log_odds("YEAR") > 1.0);
        assert_eq!(prior.log_odds("unseen_column"), 0.0);
        for _ in 0..9 {
            prior.observe("revenue", false);
        }
        assert!(prior.log_odds("revenue") < 0.0);
    }

    #[test]
    fn prior_feeds_the_feature_vector() {
        let mut prior = ColumnNamePrior::default();
        for _ in 0..5 {
            prior.observe("company", true);
        }
        let c = str_col("company", &["x", "y"]);
        let f = groupby_features(&c, 0, 2, &prior);
        assert!(f.get("name_prior") > 0.0);
    }

    #[test]
    fn emptiness_reflected() {
        let c = Column::new("c", vec![Value::Null, Value::Int(1), Value::Null, Value::Int(2)]);
        let f = groupby_features(&c, 0, 1, &ColumnNamePrior::default());
        assert!((f.get("emptiness") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_aligned_with_names() {
        let c = str_col("c", &["a"]);
        let f = groupby_features(&c, 0, 1, &ColumnNamePrior::default());
        assert_eq!(f.values.len(), GROUPBY_FEATURE_NAMES.len());
        assert_eq!(f.values.len(), GROUPBY_FEATURE_GROUPS.len());
    }

    #[test]
    fn constant_numeric_column_has_max_density() {
        let c = float_col("k", &[5.0, 5.0, 5.0]);
        let f = groupby_features(&c, 0, 1, &ColumnNamePrior::default());
        assert_eq!(f.get("distinct_over_range"), 10.0); // zero span → capped
    }
}
