//! Join-candidate enumeration with type and sketch pruning (§4.1, fn. 2).

use autosuggest_cache::{ColumnArtifacts, ColumnCache, MinHashSketch};
use autosuggest_dataframe::{DataFrame, DType};
use autosuggest_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A candidate join: column index sets `S ⊆ T` and `S' ⊆ T'` with
/// `|S| = |S'|`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinCandidate {
    pub left_cols: Vec<usize>,
    pub right_cols: Vec<usize>,
}

/// Knobs for candidate enumeration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateParams {
    /// Sketch size for the containment pre-check.
    pub sketch_k: usize,
    /// Single-column pairs whose best-direction containment estimate falls
    /// below this are pruned (kept lax: pruning must not drop ground truth).
    pub min_containment: f64,
    /// Maximum key width; 2 covers the multi-column joins seen in notebooks.
    pub max_width: usize,
    /// Cap on emitted candidates (safety valve for very wide tables).
    pub max_candidates: usize,
}

impl Default for CandidateParams {
    fn default() -> Self {
        CandidateParams {
            sketch_k: 64,
            min_containment: 0.02,
            max_width: 2,
            max_candidates: 2_000,
        }
    }
}

/// Distinct non-null tuple hashes for a column set.
///
/// Delegates to the canonical implementation in `autosuggest_cache`
/// ([`autosuggest_cache::KeyTupleSet`]) so the null-skip and hashing
/// semantics live in exactly one place; the featuriser's hot path uses the
/// cached `PairCache::key_tuples` instead of this eager set.
pub fn key_tuple_hashes(df: &DataFrame, cols: &[usize]) -> HashSet<u64> {
    autosuggest_cache::KeyTupleSet::compute(df, cols)
        .hashes()
        .iter()
        .copied()
        .collect()
}

/// Enumerate join candidates between `left` and `right`.
///
/// Single-column pairs are kept when their dtypes unify (footnote 2's
/// type-mismatch pruning) and the sketched containment in either direction
/// clears `min_containment`. Two-column candidates are built from ordered
/// pairs of surviving single-column candidates that use distinct columns on
/// both sides.
pub fn enumerate_join_candidates(
    left: &DataFrame,
    right: &DataFrame,
    params: &CandidateParams,
) -> Vec<JoinCandidate> {
    let _span = obs::span("enumerate_join_candidates");
    let out = enumerate_inner(left, right, params);
    obs::counter_add("features.join_candidates", out.len() as u64);
    out
}

fn enumerate_inner(
    left: &DataFrame,
    right: &DataFrame,
    params: &CandidateParams,
) -> Vec<JoinCandidate> {
    // Per-column sketches and dtypes come from the content-addressed cache:
    // the same column enumerated against many partners (or re-enumerated
    // across training and evaluation) is fingerprinted and computed once.
    // Cached artifacts delegate to the same `Column` methods used before,
    // and `sketch_at` truncation is exact, so hits are bit-identical to
    // recomputation. Artifact fetches are independent per column; run them
    // across the pool (order preserved, so downstream indices are
    // unaffected).
    let pool = autosuggest_parallel::Pool::global().with_min_items(8);
    let cache = ColumnCache::global();
    let lart: Vec<std::sync::Arc<ColumnArtifacts>> =
        pool.par_map(left.columns(), |c| cache.get_or_compute(c, params.sketch_k));
    let rart: Vec<std::sync::Arc<ColumnArtifacts>> =
        pool.par_map(right.columns(), |c| cache.get_or_compute(c, params.sketch_k));
    let ltypes: Vec<DType> = lart.iter().map(|a| a.dtype()).collect();
    let rtypes: Vec<DType> = rart.iter().map(|a| a.dtype()).collect();
    let lsketch: Vec<MinHashSketch> =
        lart.iter().map(|a| a.sketch_at(params.sketch_k)).collect();
    let rsketch: Vec<MinHashSketch> =
        rart.iter().map(|a| a.sketch_at(params.sketch_k)).collect();

    // One parallel task per left column; flattening the per-`li` rows in
    // order reproduces the sequential lexicographic (li, ri) enumeration.
    let mut singles: Vec<(usize, usize)> = pool
        .par_map_indexed(left.num_columns(), |li| {
            let mut row: Vec<(usize, usize)> = Vec::new();
            for ri in 0..right.num_columns() {
                if ltypes[li].unify(rtypes[ri]).is_none() {
                    continue;
                }
                if ltypes[li] == DType::Null && rtypes[ri] == DType::Null {
                    continue;
                }
                let c = lsketch[li]
                    .containment_in(&rsketch[ri])
                    .max(rsketch[ri].containment_in(&lsketch[li]));
                if c >= params.min_containment {
                    row.push((li, ri));
                }
            }
            row
        })
        .into_iter()
        .flatten()
        .collect();

    // Apply the cap to the singles *before* deriving anything from them, so
    // two-column candidates can only combine singles that are themselves
    // emitted — a pair never references a constituent the cap dropped.
    singles.truncate(params.max_candidates);

    let mut out: Vec<JoinCandidate> = singles
        .iter()
        .map(|&(l, r)| JoinCandidate { left_cols: vec![l], right_cols: vec![r] })
        .collect();

    if params.max_width >= 2 {
        'pairs: for (i, &(l1, r1)) in singles.iter().enumerate() {
            for &(l2, r2) in &singles[i + 1..] {
                if l1 == l2 || r1 == r2 {
                    continue;
                }
                if out.len() >= params.max_candidates {
                    break 'pairs;
                }
                out.push(JoinCandidate {
                    left_cols: vec![l1, l2],
                    right_cols: vec![r1, r2],
                });
            }
        }
    }
    out.truncate(params.max_candidates);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn strcol(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|s| Value::Str((*s).into())).collect()
    }

    fn intcol(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn type_mismatch_is_pruned() {
        let l = DataFrame::from_columns(vec![("name", strcol(&["a", "b"]))]).unwrap();
        let r = DataFrame::from_columns(vec![("id", intcol(&[1, 2]))]).unwrap();
        let cands = enumerate_join_candidates(&l, &r, &CandidateParams::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn overlapping_columns_survive() {
        let l = DataFrame::from_columns(vec![
            ("title", strcol(&["dune", "it", "emma"])),
            ("rank", intcol(&[1, 2, 3])),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("title_on_list", strcol(&["dune", "emma"])),
            ("weeks", intcol(&[3, 9])),
        ])
        .unwrap();
        let cands = enumerate_join_candidates(&l, &r, &CandidateParams::default());
        assert!(cands.contains(&JoinCandidate { left_cols: vec![0], right_cols: vec![0] }));
        // rank ↔ weeks also survives (ints with overlapping values) — the
        // ranking model, not the enumerator, must demote it.
        assert!(cands.contains(&JoinCandidate { left_cols: vec![1], right_cols: vec![1] }));
    }

    #[test]
    fn disjoint_value_sets_are_pruned() {
        let l = DataFrame::from_columns(vec![("a", strcol(&["x", "y"]))]).unwrap();
        let r = DataFrame::from_columns(vec![("b", strcol(&["p", "q"]))]).unwrap();
        let cands = enumerate_join_candidates(&l, &r, &CandidateParams::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn multi_column_candidates_combine_singles() {
        let l = DataFrame::from_columns(vec![
            ("c1", strcol(&["a", "b"])),
            ("c2", intcol(&[1, 2])),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("d1", strcol(&["a", "b"])),
            ("d2", intcol(&[1, 2])),
        ])
        .unwrap();
        let cands = enumerate_join_candidates(&l, &r, &CandidateParams::default());
        assert!(cands
            .iter()
            .any(|c| c.left_cols == vec![0, 1] && c.right_cols == vec![0, 1]));
        // No candidate reuses a column on one side.
        for c in &cands {
            let mut l = c.left_cols.clone();
            l.dedup();
            assert_eq!(l.len(), c.left_cols.len());
        }
    }

    #[test]
    fn candidate_cap_is_respected() {
        let cols: Vec<(String, Vec<Value>)> = (0..30)
            .map(|i| (format!("c{i}"), intcol(&[1, 2, 3])))
            .collect();
        let frame = |prefix: &str| {
            DataFrame::new(
                cols.iter()
                    .map(|(n, v)| {
                        autosuggest_dataframe::Column::new(format!("{prefix}{n}"), v.clone())
                    })
                    .collect(),
            )
            .unwrap()
        };
        let params = CandidateParams { max_candidates: 50, ..Default::default() };
        let cands = enumerate_join_candidates(&frame("l"), &frame("r"), &params);
        assert_eq!(cands.len(), 50);
    }

    /// A `n`-column frame of identical int columns: every (li, ri) pair
    /// survives pruning, so singles = n² in lexicographic order.
    fn dense_frame(prefix: &str, n: usize) -> DataFrame {
        DataFrame::new(
            (0..n)
                .map(|i| {
                    autosuggest_dataframe::Column::new(
                        format!("{prefix}{i}"),
                        intcol(&[1, 2, 3]),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn cap_below_singles_count_emits_exactly_the_first_singles() {
        // 5×5 identical int columns → 25 surviving singles; a cap of 9
        // must keep exactly the first 9 singles of the lexicographic
        // enumeration and emit no pairs built from dropped singles.
        let params = CandidateParams { max_candidates: 9, ..Default::default() };
        let cands = enumerate_join_candidates(&dense_frame("l", 5), &dense_frame("r", 5), &params);
        let expected: Vec<JoinCandidate> = (0..5)
            .flat_map(|l| (0..5).map(move |r| (l, r)))
            .take(9)
            .map(|(l, r)| JoinCandidate { left_cols: vec![l], right_cols: vec![r] })
            .collect();
        assert_eq!(cands, expected);
    }

    #[test]
    fn pair_constituents_are_always_emitted_singles() {
        // Cap sits between the singles count (16) and the uncapped total,
        // so the pair loop runs while the cap binds. Every emitted pair
        // must decompose into two singles that are themselves in the
        // output — the invariant the untruncated-`singles` pair loop
        // violated by construction.
        let params = CandidateParams { max_candidates: 20, ..Default::default() };
        let cands = enumerate_join_candidates(&dense_frame("l", 4), &dense_frame("r", 4), &params);
        assert_eq!(cands.len(), 20);
        let singles: HashSet<(usize, usize)> = cands
            .iter()
            .filter(|c| c.left_cols.len() == 1)
            .map(|c| (c.left_cols[0], c.right_cols[0]))
            .collect();
        assert_eq!(singles.len(), 16);
        for c in cands.iter().filter(|c| c.left_cols.len() == 2) {
            for w in 0..2 {
                assert!(
                    singles.contains(&(c.left_cols[w], c.right_cols[w])),
                    "pair {c:?} references a single that was not emitted"
                );
            }
        }
    }

    #[test]
    fn capped_enumeration_is_a_prefix_of_the_uncapped_one() {
        // Tightening the cap must only ever drop a suffix, never reorder or
        // substitute candidates.
        let uncapped = enumerate_join_candidates(
            &dense_frame("l", 4),
            &dense_frame("r", 4),
            &CandidateParams::default(),
        );
        for cap in [1, 7, 16, 21, 40, uncapped.len()] {
            let params = CandidateParams { max_candidates: cap, ..Default::default() };
            let capped =
                enumerate_join_candidates(&dense_frame("l", 4), &dense_frame("r", 4), &params);
            assert_eq!(capped.len(), cap.min(uncapped.len()));
            assert_eq!(capped[..], uncapped[..capped.len()]);
        }
    }

    #[test]
    fn key_tuple_hashes_skip_null_rows() {
        let df = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1), Value::Null, Value::Int(1)]),
            ("b", vec![Value::Int(2), Value::Int(3), Value::Int(2)]),
        ])
        .unwrap();
        let hashes = key_tuple_hashes(&df, &[0, 1]);
        assert_eq!(hashes.len(), 1); // row 1 skipped, rows 0 and 2 identical
    }
}
