//! Data-flow graph extraction (§3.3, Fig. 4).
//!
//! Replay records the content hash of every frame an operator consumes or
//! produces. Nodes of the flow graph are (versioned) frames identified by
//! hash; edges are operator invocations. Walking a notebook's edges in
//! execution order yields the operator sequence used for next-operator
//! prediction (§5) and the Table 10 distribution.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The logical operators replay instruments. The first seven are the
/// sequence vocabulary of §3.3 ("concat, dropna, fillna, groupby, melt,
/// merge, and pivot"); `JsonNormalize` is logged for its own predictor but
/// excluded from sequences, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    Concat,
    DropNa,
    FillNa,
    GroupBy,
    Melt,
    Merge,
    Pivot,
    JsonNormalize,
}

impl OpKind {
    /// The 7 operators that participate in operator sequences (§3.3).
    pub const SEQUENCE_OPS: [OpKind; 7] = [
        OpKind::Concat,
        OpKind::DropNa,
        OpKind::FillNa,
        OpKind::GroupBy,
        OpKind::Melt,
        OpKind::Merge,
        OpKind::Pivot,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Concat => "concat",
            OpKind::DropNa => "dropna",
            OpKind::FillNa => "fillna",
            OpKind::GroupBy => "groupby",
            OpKind::Melt => "unpivot",
            OpKind::Merge => "join",
            OpKind::Pivot => "pivot",
            OpKind::JsonNormalize => "json_normalize",
        }
    }

    /// Stable id of this operator within [`OpKind::SEQUENCE_OPS`], or `None`
    /// for operators outside the sequence vocabulary.
    pub fn sequence_id(self) -> Option<usize> {
        OpKind::SEQUENCE_OPS.iter().position(|&o| o == self)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One edge of the flow graph: an operator reading `inputs` and producing
/// `output` (frames identified by content hash).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowEdge {
    pub op: OpKind,
    pub inputs: Vec<u64>,
    pub output: u64,
    /// Execution order within the notebook.
    pub step: usize,
}

/// The data-flow graph of one replayed notebook.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowGraph {
    edges: Vec<FlowEdge>,
}

impl FlowGraph {
    pub fn new() -> Self {
        FlowGraph::default()
    }

    pub fn record(&mut self, op: OpKind, inputs: Vec<u64>, output: u64) {
        let step = self.edges.len();
        self.edges.push(FlowEdge { op, inputs, output, step });
    }

    pub fn edges(&self) -> &[FlowEdge] {
        &self.edges
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The operator sequence in execution order, restricted to the
    /// 7-operator sequence vocabulary.
    pub fn op_sequence(&self) -> Vec<OpKind> {
        self.edges
            .iter()
            .filter(|e| e.op.sequence_id().is_some())
            .map(|e| e.op)
            .collect()
    }

    /// All frames with in-degree 0 (sources: frames read from files).
    pub fn source_frames(&self) -> Vec<u64> {
        let produced: std::collections::HashSet<u64> =
            self.edges.iter().map(|e| e.output).collect();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for e in &self.edges {
            for &i in &e.inputs {
                if !produced.contains(&i) && seen.insert(i) {
                    out.push(i);
                }
            }
        }
        out
    }

    /// Which operator produced each frame (the frame's provenance).
    pub fn producer_of(&self) -> HashMap<u64, OpKind> {
        self.edges.iter().map(|e| (e.output, e.op)).collect()
    }

    /// Upstream chain depth of each frame: sources are depth 0; an
    /// operator's output is 1 + max(input depths).
    pub fn frame_depths(&self) -> HashMap<u64, usize> {
        let mut depth: HashMap<u64, usize> = HashMap::new();
        for e in &self.edges {
            let d = e
                .inputs
                .iter()
                .map(|i| depth.get(i).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            depth.insert(e.output, d + 1);
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 pipeline: two reads → merge → {pivot, groupby}.
    fn fig4() -> FlowGraph {
        let mut g = FlowGraph::new();
        g.record(OpKind::Merge, vec![1, 2], 3);
        g.record(OpKind::Pivot, vec![3], 4);
        g.record(OpKind::GroupBy, vec![3], 5);
        g
    }

    #[test]
    fn sequence_follows_execution_order() {
        assert_eq!(
            fig4().op_sequence(),
            vec![OpKind::Merge, OpKind::Pivot, OpKind::GroupBy]
        );
    }

    #[test]
    fn sources_are_frames_never_produced() {
        let mut s = fig4().source_frames();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2]);
    }

    #[test]
    fn json_normalize_is_excluded_from_sequences() {
        let mut g = FlowGraph::new();
        g.record(OpKind::JsonNormalize, vec![], 1);
        g.record(OpKind::GroupBy, vec![1], 2);
        assert_eq!(g.op_sequence(), vec![OpKind::GroupBy]);
        assert!(OpKind::JsonNormalize.sequence_id().is_none());
    }

    #[test]
    fn depths_accumulate_along_chains() {
        let d = fig4().frame_depths();
        assert_eq!(d[&3], 1);
        assert_eq!(d[&4], 2);
        assert_eq!(d[&5], 2);
    }

    #[test]
    fn sequence_ids_are_stable_and_total() {
        for (i, op) in OpKind::SEQUENCE_OPS.iter().enumerate() {
            assert_eq!(op.sequence_id(), Some(i));
        }
    }

    #[test]
    fn producer_map() {
        let p = fig4().producer_of();
        assert_eq!(p[&4], OpKind::Pivot);
        assert!(!p.contains_key(&1));
    }
}
