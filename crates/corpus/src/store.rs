//! Disk-backed sample store for replayed invocations (the staged
//! crawl → replay layout of §3.1, scaled past RSS).
//!
//! Replay at corpus scale cannot accumulate `Vec<ReplayReport>` — each
//! report carries full input-table dumps, so memory grows linearly with
//! corpus size. Instead, streamed replay (see [`crate::stream`]) writes each
//! shard of reports to a [`SampleStore`]: one checksummed, write-once shard
//! file per shard of notebooks, plus a JSON manifest of completed shards so
//! a killed run resumes where it left off.
//!
//! The file conventions mirror `crates/cache/src/disk.rs`: a magic/version
//! header, FNV-1a-64 checksums over every record payload, floats stored as
//! IEEE-754 bit patterns (bit-exact round-trips, NaN payloads preserved),
//! and tmp-write + atomic rename so readers never observe a partial file. A
//! shard that fails verification is deleted and re-replayed, never trusted.
//!
//! The vendored serde shim has no generic deserializer (its `Deserialize`
//! is a marker trait), so records use a hand-rolled little-endian binary
//! codec. Every encoder/decoder pair below is pinned by round-trip tests.

use crate::faults::{KindCounters, RobustnessStats};
use crate::flowgraph::{FlowGraph, OpKind};
use crate::replay::{OpInvocation, OpParams, ReplayOutcome, ReplayReport};
use autosuggest_dataframe::ops::{Agg, JoinType};
use autosuggest_dataframe::{Column, DataFrame, Value};
use autosuggest_obs as obs;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Shard file magic: "Auto-Suggest Generated Samples".
const MAGIC: [u8; 4] = *b"ASGS";
const VERSION: u16 = 1;
const MANIFEST_VERSION: u64 = 1;

/// Record tags within a shard file.
const TAG_SHARD_HEADER: u8 = 1;
const TAG_REPORT: u8 = 2;
const TAG_INVOCATION: u8 = 3;
const TAG_STATS: u8 = 4;
const TAG_END: u8 = 5;

/// FNV-1a 64-bit — same constants as the disk cache's shard checksums.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }
    fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// IEEE-754 bit pattern: bit-exact round-trip incl. NaN payloads, -0.0.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
    fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }
    fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a record payload.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("record payload truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn get_u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn get_usize(&mut self) -> io::Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| bad_data("length overflows usize"))
    }
    fn get_i64(&mut self) -> io::Result<i64> {
        Ok(self.get_u64()? as i64)
    }
    fn get_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }
    fn get_bool(&mut self) -> io::Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(bad_data(format!("invalid bool byte {v}"))),
        }
    }
    fn get_str(&mut self) -> io::Result<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("invalid utf-8 in record"))
    }

    fn finish(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_data("trailing bytes in record payload"))
        }
    }
}

fn put_opt_str(w: &mut ByteWriter, v: Option<&str>) {
    match v {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
    }
}

fn get_opt_str(r: &mut ByteReader) -> io::Result<Option<String>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_str()?)),
        v => Err(bad_data(format!("invalid option byte {v}"))),
    }
}

fn put_str_vec(w: &mut ByteWriter, v: &[String]) {
    w.put_usize(v.len());
    for s in v {
        w.put_str(s);
    }
}

fn get_str_vec(r: &mut ByteReader) -> io::Result<Vec<String>> {
    let n = r.get_usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(r.get_str()?);
    }
    Ok(out)
}

fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_bool(*b);
        }
        Value::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(3);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(5);
            w.put_i64(*d);
        }
    }
}

fn get_value(r: &mut ByteReader) -> io::Result<Value> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.get_bool()?),
        2 => Value::Int(r.get_i64()?),
        3 => Value::Float(r.get_f64()?),
        4 => Value::Str(r.get_str()?),
        5 => Value::Date(r.get_i64()?),
        t => return Err(bad_data(format!("invalid value tag {t}"))),
    })
}

fn put_frame(w: &mut ByteWriter, frame: &DataFrame) {
    let cols = frame.columns();
    w.put_usize(cols.len());
    for col in cols {
        w.put_str(col.name());
        w.put_usize(col.values().len());
        for v in col.values() {
            put_value(w, v);
        }
    }
}

fn get_frame(r: &mut ByteReader) -> io::Result<DataFrame> {
    let ncols = r.get_usize()?;
    let mut cols = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        let name = r.get_str()?;
        let nrows = r.get_usize()?;
        let mut vals = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            vals.push(get_value(r)?);
        }
        cols.push(Column::new(name, vals));
    }
    DataFrame::new(cols).map_err(|e| bad_data(format!("stored frame invalid: {e}")))
}

fn op_kind_tag(op: OpKind) -> u8 {
    match op {
        OpKind::Concat => 0,
        OpKind::DropNa => 1,
        OpKind::FillNa => 2,
        OpKind::GroupBy => 3,
        OpKind::Melt => 4,
        OpKind::Merge => 5,
        OpKind::Pivot => 6,
        OpKind::JsonNormalize => 7,
    }
}

fn op_kind_from_tag(t: u8) -> io::Result<OpKind> {
    Ok(match t {
        0 => OpKind::Concat,
        1 => OpKind::DropNa,
        2 => OpKind::FillNa,
        3 => OpKind::GroupBy,
        4 => OpKind::Melt,
        5 => OpKind::Merge,
        6 => OpKind::Pivot,
        7 => OpKind::JsonNormalize,
        _ => return Err(bad_data(format!("invalid op kind tag {t}"))),
    })
}

fn join_type_tag(j: JoinType) -> u8 {
    match j {
        JoinType::Inner => 0,
        JoinType::Left => 1,
        JoinType::Right => 2,
        JoinType::Outer => 3,
    }
}

fn join_type_from_tag(t: u8) -> io::Result<JoinType> {
    Ok(match t {
        0 => JoinType::Inner,
        1 => JoinType::Left,
        2 => JoinType::Right,
        3 => JoinType::Outer,
        _ => return Err(bad_data(format!("invalid join type tag {t}"))),
    })
}

fn agg_tag(a: Agg) -> u8 {
    match a {
        Agg::Sum => 0,
        Agg::Mean => 1,
        Agg::Count => 2,
        Agg::Min => 3,
        Agg::Max => 4,
        Agg::First => 5,
    }
}

fn agg_from_tag(t: u8) -> io::Result<Agg> {
    Ok(match t {
        0 => Agg::Sum,
        1 => Agg::Mean,
        2 => Agg::Count,
        3 => Agg::Min,
        4 => Agg::Max,
        5 => Agg::First,
        _ => return Err(bad_data(format!("invalid agg tag {t}"))),
    })
}

fn put_params(w: &mut ByteWriter, p: &OpParams) {
    match p {
        OpParams::Merge { left_on, right_on, how, suffixes, sort, indicator } => {
            w.put_u8(0);
            put_str_vec(w, left_on);
            put_str_vec(w, right_on);
            w.put_u8(join_type_tag(*how));
            w.put_str(&suffixes.0);
            w.put_str(&suffixes.1);
            w.put_bool(*sort);
            w.put_bool(*indicator);
        }
        OpParams::GroupBy { keys, aggs, sort, dropna } => {
            w.put_u8(1);
            put_str_vec(w, keys);
            w.put_usize(aggs.len());
            for (col, agg) in aggs {
                w.put_str(col);
                w.put_u8(agg_tag(*agg));
            }
            w.put_bool(*sort);
            w.put_bool(*dropna);
        }
        OpParams::Pivot { index, header, values, agg, fill_value, margins } => {
            w.put_u8(2);
            put_str_vec(w, index);
            put_str_vec(w, header);
            w.put_str(values);
            w.put_u8(agg_tag(*agg));
            match fill_value {
                None => w.put_u8(0),
                Some(v) => {
                    w.put_u8(1);
                    w.put_f64(*v);
                }
            }
            w.put_bool(*margins);
        }
        OpParams::Melt { id_vars, value_vars, var_name, value_name } => {
            w.put_u8(3);
            put_str_vec(w, id_vars);
            put_str_vec(w, value_vars);
            w.put_str(var_name);
            w.put_str(value_name);
        }
        OpParams::Concat { num_frames, axis, ignore_index } => {
            w.put_u8(4);
            w.put_usize(*num_frames);
            w.put_u8(*axis);
            w.put_bool(*ignore_index);
        }
        OpParams::DropNa { how_all, subset } => {
            w.put_u8(5);
            w.put_bool(*how_all);
            match subset {
                None => w.put_u8(0),
                Some(cols) => {
                    w.put_u8(1);
                    put_str_vec(w, cols);
                }
            }
        }
        OpParams::FillNa { value } => {
            w.put_u8(6);
            w.put_str(value);
        }
        OpParams::JsonNormalize { record_path } => {
            w.put_u8(7);
            match record_path {
                None => w.put_u8(0),
                Some(path) => {
                    w.put_u8(1);
                    put_str_vec(w, path);
                }
            }
        }
    }
}

fn get_params(r: &mut ByteReader) -> io::Result<OpParams> {
    Ok(match r.get_u8()? {
        0 => OpParams::Merge {
            left_on: get_str_vec(r)?,
            right_on: get_str_vec(r)?,
            how: join_type_from_tag(r.get_u8()?)?,
            suffixes: (r.get_str()?, r.get_str()?),
            sort: r.get_bool()?,
            indicator: r.get_bool()?,
        },
        1 => OpParams::GroupBy {
            keys: get_str_vec(r)?,
            aggs: {
                let n = r.get_usize()?;
                let mut aggs = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let col = r.get_str()?;
                    let agg = agg_from_tag(r.get_u8()?)?;
                    aggs.push((col, agg));
                }
                aggs
            },
            sort: r.get_bool()?,
            dropna: r.get_bool()?,
        },
        2 => OpParams::Pivot {
            index: get_str_vec(r)?,
            header: get_str_vec(r)?,
            values: r.get_str()?,
            agg: agg_from_tag(r.get_u8()?)?,
            fill_value: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_f64()?),
                v => return Err(bad_data(format!("invalid option byte {v}"))),
            },
            margins: r.get_bool()?,
        },
        3 => OpParams::Melt {
            id_vars: get_str_vec(r)?,
            value_vars: get_str_vec(r)?,
            var_name: r.get_str()?,
            value_name: r.get_str()?,
        },
        4 => OpParams::Concat {
            num_frames: r.get_usize()?,
            axis: r.get_u8()?,
            ignore_index: r.get_bool()?,
        },
        5 => OpParams::DropNa {
            how_all: r.get_bool()?,
            subset: match r.get_u8()? {
                0 => None,
                1 => Some(get_str_vec(r)?),
                v => return Err(bad_data(format!("invalid option byte {v}"))),
            },
        },
        6 => OpParams::FillNa { value: r.get_str()? },
        7 => OpParams::JsonNormalize {
            record_path: match r.get_u8()? {
                0 => None,
                1 => Some(get_str_vec(r)?),
                v => return Err(bad_data(format!("invalid option byte {v}"))),
            },
        },
        t => return Err(bad_data(format!("invalid params tag {t}"))),
    })
}

fn put_outcome(w: &mut ByteWriter, o: &ReplayOutcome) {
    match o {
        ReplayOutcome::Success => w.put_u8(0),
        ReplayOutcome::MissingFile(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        ReplayOutcome::MissingPackage(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        ReplayOutcome::Timeout => w.put_u8(3),
        ReplayOutcome::ExecutionError(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
        ReplayOutcome::OperatorPanic(s) => {
            w.put_u8(5);
            w.put_str(s);
        }
    }
}

fn get_outcome(r: &mut ByteReader) -> io::Result<ReplayOutcome> {
    Ok(match r.get_u8()? {
        0 => ReplayOutcome::Success,
        1 => ReplayOutcome::MissingFile(r.get_str()?),
        2 => ReplayOutcome::MissingPackage(r.get_str()?),
        3 => ReplayOutcome::Timeout,
        4 => ReplayOutcome::ExecutionError(r.get_str()?),
        5 => ReplayOutcome::OperatorPanic(r.get_str()?),
        t => return Err(bad_data(format!("invalid outcome tag {t}"))),
    })
}

fn error_kind_tag(k: crate::error::ReplayErrorKind) -> u8 {
    use crate::error::ReplayErrorKind::*;
    match k {
        IoPath => 0,
        MissingPackage => 1,
        SchemaMismatch => 2,
        OperatorPanic => 3,
        Timeout => 4,
    }
}

fn error_kind_from_tag(t: u8) -> io::Result<crate::error::ReplayErrorKind> {
    use crate::error::ReplayErrorKind::*;
    Ok(match t {
        0 => IoPath,
        1 => MissingPackage,
        2 => SchemaMismatch,
        3 => OperatorPanic,
        4 => Timeout,
        _ => return Err(bad_data(format!("invalid error kind tag {t}"))),
    })
}

fn put_flow(w: &mut ByteWriter, flow: &FlowGraph) {
    let edges = flow.edges();
    w.put_usize(edges.len());
    for e in edges {
        w.put_u8(op_kind_tag(e.op));
        w.put_usize(e.inputs.len());
        for &i in &e.inputs {
            w.put_u64(i);
        }
        w.put_u64(e.output);
    }
}

/// Rebuild a flow graph by re-recording edges in order; `record` assigns
/// `step = index`, so the round-trip is exact.
fn get_flow(r: &mut ByteReader) -> io::Result<FlowGraph> {
    let n = r.get_usize()?;
    let mut flow = FlowGraph::new();
    for _ in 0..n {
        let op = op_kind_from_tag(r.get_u8()?)?;
        let n_inputs = r.get_usize()?;
        let mut inputs = Vec::with_capacity(n_inputs.min(1 << 12));
        for _ in 0..n_inputs {
            inputs.push(r.get_u64()?);
        }
        let output = r.get_u64()?;
        flow.record(op, inputs, output);
    }
    Ok(flow)
}

/// The per-operator sample record: one instrumented invocation, inputs and
/// parameters included — the store's equivalent of the exemplar pipeline's
/// `data.csv` + `param.json` pair, in one checksummed binary record.
fn encode_invocation(inv: &OpInvocation) -> Vec<u8> {
    let mut w = ByteWriter::default();
    w.put_str(&inv.notebook_id);
    w.put_str(&inv.dataset_group);
    w.put_usize(inv.cell_index);
    w.put_u8(op_kind_tag(inv.op));
    w.put_usize(inv.inputs.len());
    for frame in &inv.inputs {
        put_frame(&mut w, frame);
    }
    put_params(&mut w, &inv.params);
    w.put_usize(inv.input_hashes.len());
    for &h in &inv.input_hashes {
        w.put_u64(h);
    }
    w.put_u64(inv.output_hash);
    w.put_usize(inv.output_rows);
    w.put_usize(inv.output_cols);
    w.buf
}

fn decode_invocation(payload: &[u8]) -> io::Result<OpInvocation> {
    let mut r = ByteReader::new(payload);
    let notebook_id = r.get_str()?;
    let dataset_group = r.get_str()?;
    let cell_index = r.get_usize()?;
    let op = op_kind_from_tag(r.get_u8()?)?;
    let n_inputs = r.get_usize()?;
    let mut inputs = Vec::with_capacity(n_inputs.min(16));
    for _ in 0..n_inputs {
        inputs.push(get_frame(&mut r)?);
    }
    let params = get_params(&mut r)?;
    let n_hashes = r.get_usize()?;
    let mut input_hashes = Vec::with_capacity(n_hashes.min(16));
    for _ in 0..n_hashes {
        input_hashes.push(r.get_u64()?);
    }
    let inv = OpInvocation {
        notebook_id,
        dataset_group,
        cell_index,
        op,
        inputs,
        params,
        input_hashes,
        output_hash: r.get_u64()?,
        output_rows: r.get_usize()?,
        output_cols: r.get_usize()?,
    };
    r.finish()?;
    Ok(inv)
}

/// Report skeleton: everything in [`ReplayReport`] except `invocations`,
/// which follow as their own records (so a reader can stream invocations
/// without materialising whole reports).
fn encode_report_skeleton(rep: &ReplayReport) -> Vec<u8> {
    let mut w = ByteWriter::default();
    w.put_str(&rep.notebook_id);
    w.put_str(&rep.dataset_group);
    put_outcome(&mut w, &rep.outcome);
    w.put_usize(rep.cells_executed);
    w.put_usize(rep.invocations.len());
    put_flow(&mut w, &rep.flow);
    put_str_vec(&mut w, &rep.packages_installed);
    put_str_vec(&mut w, &rep.files_recovered);
    w.put_usize(rep.cell_retries);
    w.put_usize(rep.injected_faults.len());
    for &k in &rep.injected_faults {
        w.put_u8(error_kind_tag(k));
    }
    w.buf
}

/// A decoded skeleton plus the number of invocation records that follow.
struct ReportSkeleton {
    report: ReplayReport,
    pending_invocations: usize,
}

fn decode_report_skeleton(payload: &[u8]) -> io::Result<ReportSkeleton> {
    let mut r = ByteReader::new(payload);
    let notebook_id = r.get_str()?;
    let dataset_group = r.get_str()?;
    let outcome = get_outcome(&mut r)?;
    let cells_executed = r.get_usize()?;
    let pending_invocations = r.get_usize()?;
    let flow = get_flow(&mut r)?;
    let packages_installed = get_str_vec(&mut r)?;
    let files_recovered = get_str_vec(&mut r)?;
    let cell_retries = r.get_usize()?;
    let n_faults = r.get_usize()?;
    let mut injected_faults = Vec::with_capacity(n_faults.min(1 << 10));
    for _ in 0..n_faults {
        injected_faults.push(error_kind_from_tag(r.get_u8()?)?);
    }
    r.finish()?;
    Ok(ReportSkeleton {
        report: ReplayReport {
            notebook_id,
            dataset_group,
            outcome,
            cells_executed,
            invocations: Vec::with_capacity(pending_invocations.min(1 << 10)),
            flow,
            packages_installed,
            files_recovered,
            cell_retries,
            injected_faults,
        },
        pending_invocations,
    })
}

fn put_kind_counters(w: &mut ByteWriter, k: &KindCounters) {
    w.put_usize(k.injected);
    w.put_usize(k.failures);
    w.put_usize(k.retries);
    w.put_usize(k.recovered);
    w.put_usize(k.quarantined);
}

fn get_kind_counters(r: &mut ByteReader) -> io::Result<KindCounters> {
    Ok(KindCounters {
        injected: r.get_usize()?,
        failures: r.get_usize()?,
        retries: r.get_usize()?,
        recovered: r.get_usize()?,
        quarantined: r.get_usize()?,
    })
}

fn encode_stats(s: &RobustnessStats) -> Vec<u8> {
    let mut w = ByteWriter::default();
    put_opt_str(&mut w, s.fault_spec.as_deref());
    w.put_usize(s.notebooks);
    w.put_usize(s.failed_first_pass);
    w.put_usize(s.retried_notebooks);
    w.put_usize(s.recovered_notebooks);
    w.put_usize(s.quarantined_notebooks);
    w.put_usize(s.cell_retries);
    put_kind_counters(&mut w, &s.io_path);
    put_kind_counters(&mut w, &s.missing_package);
    put_kind_counters(&mut w, &s.schema_mismatch);
    put_kind_counters(&mut w, &s.operator_panic);
    put_kind_counters(&mut w, &s.timeout);
    w.buf
}

fn decode_stats(payload: &[u8]) -> io::Result<RobustnessStats> {
    let mut r = ByteReader::new(payload);
    let stats = RobustnessStats {
        fault_spec: get_opt_str(&mut r)?,
        notebooks: r.get_usize()?,
        failed_first_pass: r.get_usize()?,
        retried_notebooks: r.get_usize()?,
        recovered_notebooks: r.get_usize()?,
        quarantined_notebooks: r.get_usize()?,
        cell_retries: r.get_usize()?,
        io_path: get_kind_counters(&mut r)?,
        missing_package: get_kind_counters(&mut r)?,
        schema_mismatch: get_kind_counters(&mut r)?,
        operator_panic: get_kind_counters(&mut r)?,
        timeout: get_kind_counters(&mut r)?,
    };
    r.finish()?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Shard files
// ---------------------------------------------------------------------------

/// Append one `tag · len · payload · fnv64(payload)` record.
fn append_record(file_buf: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    file_buf.push(tag);
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    debug_assert!(payload.len() <= u32::MAX as usize, "record payload over 4 GiB");
    file_buf.extend_from_slice(&len.to_le_bytes());
    file_buf.extend_from_slice(payload);
    file_buf.extend_from_slice(&fnv64(payload).to_le_bytes());
}

/// One parsed record: `(tag, payload)`, checksum already verified.
fn next_record<'a>(buf: &'a [u8], pos: &mut usize) -> io::Result<(u8, &'a [u8])> {
    let rest = &buf[*pos..];
    if rest.len() < 5 {
        return Err(bad_data("shard truncated at record header"));
    }
    let tag = rest[0];
    let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
    let body = &rest[5..];
    if body.len() < len + 8 {
        return Err(bad_data("shard truncated inside record"));
    }
    let payload = &body[..len];
    let stored = u64::from_le_bytes(
        body[len..len + 8]
            .try_into()
            .map_err(|_| bad_data("shard truncated at checksum"))?,
    );
    if fnv64(payload) != stored {
        return Err(bad_data(format!("record checksum mismatch (tag {tag})")));
    }
    *pos += 5 + len + 8;
    Ok((tag, payload))
}

/// Serialise one shard's reports + stats into a complete shard file image.
fn encode_shard(shard_id: usize, reports: &[ReplayReport], stats: &RobustnessStats) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());

    let mut header = ByteWriter::default();
    header.put_usize(shard_id);
    header.put_usize(reports.len());
    append_record(&mut buf, TAG_SHARD_HEADER, &header.buf);

    for rep in reports {
        append_record(&mut buf, TAG_REPORT, &encode_report_skeleton(rep));
        for inv in &rep.invocations {
            append_record(&mut buf, TAG_INVOCATION, &encode_invocation(inv));
        }
    }
    append_record(&mut buf, TAG_STATS, &encode_stats(stats));
    append_record(&mut buf, TAG_END, &[]);
    buf
}

/// Parse a complete shard file image back into reports + stats.
fn decode_shard(shard_id: usize, buf: &[u8]) -> io::Result<(Vec<ReplayReport>, RobustnessStats)> {
    if buf.len() < 6 || buf[..4] != MAGIC {
        return Err(bad_data("bad shard magic"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(bad_data(format!("unsupported shard version {version}")));
    }
    let mut pos = 6usize;

    let (tag, payload) = next_record(buf, &mut pos)?;
    if tag != TAG_SHARD_HEADER {
        return Err(bad_data("shard does not start with a header record"));
    }
    let mut hr = ByteReader::new(payload);
    let stored_id = hr.get_usize()?;
    let notebook_count = hr.get_usize()?;
    hr.finish()?;
    if stored_id != shard_id {
        return Err(bad_data(format!(
            "shard id mismatch: file says {stored_id}, manifest says {shard_id}"
        )));
    }

    let mut reports: Vec<ReplayReport> = Vec::with_capacity(notebook_count);
    let mut pending = 0usize;
    let mut stats: Option<RobustnessStats> = None;
    loop {
        let (tag, payload) = next_record(buf, &mut pos)?;
        match tag {
            TAG_REPORT => {
                if pending != 0 {
                    return Err(bad_data("report record before invocations drained"));
                }
                let skel = decode_report_skeleton(payload)?;
                pending = skel.pending_invocations;
                reports.push(skel.report);
            }
            TAG_INVOCATION => {
                let rep = reports
                    .last_mut()
                    .ok_or_else(|| bad_data("invocation record before any report"))?;
                if pending == 0 {
                    return Err(bad_data("more invocation records than the report declared"));
                }
                rep.invocations.push(decode_invocation(payload)?);
                pending -= 1;
            }
            TAG_STATS => {
                if pending != 0 {
                    return Err(bad_data("stats record before invocations drained"));
                }
                stats = Some(decode_stats(payload)?);
            }
            TAG_END => break,
            t => return Err(bad_data(format!("unknown record tag {t}"))),
        }
    }
    if pos != buf.len() {
        return Err(bad_data("trailing bytes after end record"));
    }
    if reports.len() != notebook_count {
        return Err(bad_data(format!(
            "shard header declared {notebook_count} reports, found {}",
            reports.len()
        )));
    }
    let stats = stats.ok_or_else(|| bad_data("shard missing stats record"))?;
    Ok((reports, stats))
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Per-shard bookkeeping recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// FNV-1a-64 of the full shard file, verified on open and on read.
    pub file_fnv: u64,
    /// Reports in the shard.
    pub notebooks: usize,
    /// Invocation records in the shard.
    pub invocations: usize,
}

/// A directory of checksummed shard files plus a manifest of completed
/// shards, keyed by a corpus id so stale stores are never resumed into.
///
/// Layout under `root`:
/// ```text
/// manifest.json          completed-shard index (atomic rewrite per shard)
/// shards/shard-00042.asg one write-once file per completed shard
/// ```
///
/// Writes go through tmp + rename (same convention as the disk cache), the
/// manifest is rewritten after *each* shard, and `open` drops any manifest
/// entry whose file is missing or fails checksum — so a crash at any point
/// loses at most the shard in flight.
pub struct SampleStore {
    root: PathBuf,
    corpus_id: String,
    shard_size: usize,
    total_shards: usize,
    shards: BTreeMap<usize, ShardMeta>,
    tmp_counter: u64,
}

impl SampleStore {
    /// Open (or create) a store at `root` for the given corpus identity.
    ///
    /// An existing manifest is honoured only if `(corpus_id, shard_size,
    /// total_shards)` all match — the same compatibility gating idea as
    /// `RetrainPlanner`'s corpus-id check; otherwise the store is reset.
    /// Listed shards are verified against their whole-file checksum;
    /// corrupt or missing shards are dropped from the manifest (and will be
    /// re-replayed). Stale tmp files from crashed writers are swept.
    pub fn open(
        root: impl Into<PathBuf>,
        corpus_id: &str,
        shard_size: usize,
        total_shards: usize,
    ) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("shards"))?;

        let mut store = SampleStore {
            root,
            corpus_id: corpus_id.to_string(),
            shard_size,
            total_shards,
            shards: BTreeMap::new(),
            tmp_counter: 0,
        };
        store.sweep_tmp_files()?;

        let manifest = store.root.join("manifest.json");
        let resumed = match fs::read_to_string(&manifest) {
            Ok(text) => store.load_manifest(&text),
            Err(_) => false,
        };
        if !resumed {
            store.shards.clear();
            // Fresh (or incompatible) store: drop any leftover shard files
            // so a later manifest rewrite can't resurrect foreign data.
            let mut stale: Vec<PathBuf> = fs::read_dir(store.root.join("shards"))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            stale.sort();
            for path in stale {
                let _ = fs::remove_file(path);
            }
            store.write_manifest()?;
        } else {
            // Verify every listed shard file; drop entries that fail.
            let listed: Vec<usize> = store.shards.keys().copied().collect();
            let mut dropped = false;
            for id in listed {
                if !store.verify_shard_file(id) {
                    store.shards.remove(&id);
                    let _ = fs::remove_file(store.shard_path(id));
                    dropped = true;
                }
            }
            if dropped {
                store.write_manifest()?;
            }
            obs::counter_add("store.shards_resumed", store.shards.len() as u64);
        }
        Ok(store)
    }

    fn shard_path(&self, id: usize) -> PathBuf {
        self.root.join("shards").join(format!("shard-{id:05}.asg"))
    }

    /// Remove tmp files orphaned by a writer killed between write and
    /// rename (tmp names carry a `tmp<pid>-<n>` extension, never `.asg` /
    /// `.json`, so anything else in the tree is sweepable).
    fn sweep_tmp_files(&self) -> io::Result<()> {
        for dir in [self.root.clone(), self.root.join("shards")] {
            let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            for path in entries {
                let keep = matches!(
                    path.extension().and_then(|e| e.to_str()),
                    Some("asg") | Some("json")
                );
                if !keep {
                    let _ = fs::remove_file(path);
                }
            }
        }
        Ok(())
    }

    fn load_manifest(&mut self, text: &str) -> bool {
        // The shim's `Value` exposes `as_i64`/`as_f64` only; `file_fnv` can
        // exceed `i64::MAX`, so go through `Number::as_u64`.
        fn json_u64(v: Option<&serde_json::Value>) -> Option<u64> {
            match v? {
                serde_json::Value::Number(n) => n.as_u64(),
                _ => None,
            }
        }
        let Ok(v) = serde_json::from_str(text) else { return false };
        let ok = json_u64(v.get("version")) == Some(MANIFEST_VERSION)
            && v.get("corpus_id").and_then(|x| x.as_str()) == Some(self.corpus_id.as_str())
            && json_u64(v.get("shard_size")) == Some(self.shard_size as u64)
            && json_u64(v.get("total_shards")) == Some(self.total_shards as u64);
        if !ok {
            return false;
        }
        let Some(shards) = v.get("shards").and_then(|x| x.as_array()) else { return false };
        for entry in shards {
            let (Some(id), Some(fnv), Some(nbs), Some(invs)) = (
                json_u64(entry.get("id")),
                json_u64(entry.get("file_fnv")),
                json_u64(entry.get("notebooks")),
                json_u64(entry.get("invocations")),
            ) else {
                return false;
            };
            if id as usize >= self.total_shards {
                return false;
            }
            self.shards.insert(
                id as usize,
                ShardMeta {
                    file_fnv: fnv,
                    notebooks: nbs as usize,
                    invocations: invs as usize,
                },
            );
        }
        true
    }

    fn write_manifest(&mut self) -> io::Result<()> {
        let shards: Vec<serde_json::Value> = self
            .shards
            .iter()
            .map(|(id, meta)| {
                serde_json::json!({
                    "id": *id as u64,
                    "file_fnv": meta.file_fnv,
                    "notebooks": meta.notebooks as u64,
                    "invocations": meta.invocations as u64,
                })
            })
            .collect();
        let doc = serde_json::json!({
            "version": MANIFEST_VERSION,
            "corpus_id": self.corpus_id.clone(),
            "shard_size": self.shard_size as u64,
            "total_shards": self.total_shards as u64,
            "shards": shards,
        });
        let text = serde_json::to_string(&doc)
            .map_err(|e| io::Error::other(format!("manifest encode: {e}")))?;
        self.write_atomic(&self.root.join("manifest.json"), text.as_bytes())
    }

    /// tmp-write + atomic rename, mirroring the disk cache's convention.
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.tmp_counter += 1;
        let tmp = path.with_extension(format!("tmp{}-{}", std::process::id(), self.tmp_counter));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn verify_shard_file(&self, id: usize) -> bool {
        let Some(meta) = self.shards.get(&id) else { return false };
        let Ok(bytes) = fs::read(self.shard_path(id)) else { return false };
        fnv64(&bytes) == meta.file_fnv
    }

    pub fn corpus_id(&self) -> &str {
        &self.corpus_id
    }

    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    pub fn total_shards(&self) -> usize {
        self.total_shards
    }

    /// Ids of completed shards, ascending.
    pub fn completed_shards(&self) -> Vec<usize> {
        self.shards.keys().copied().collect()
    }

    pub fn is_complete(&self, id: usize) -> bool {
        self.shards.contains_key(&id)
    }

    pub fn shard_meta(&self, id: usize) -> Option<ShardMeta> {
        self.shards.get(&id).copied()
    }

    /// Whether every shard `0..total_shards` is present.
    pub fn all_complete(&self) -> bool {
        self.shards.len() == self.total_shards
    }

    /// Persist one replayed shard and record it in the manifest. The shard
    /// file lands via tmp + rename and the manifest is rewritten after, so
    /// a crash mid-write leaves the previous manifest intact.
    pub fn write_shard(
        &mut self,
        id: usize,
        reports: &[ReplayReport],
        stats: &RobustnessStats,
    ) -> io::Result<()> {
        if id >= self.total_shards {
            return Err(bad_data(format!(
                "shard id {id} out of range (total {})",
                self.total_shards
            )));
        }
        let _span = obs::span("store_write");
        let bytes = encode_shard(id, reports, stats);
        let file_fnv = fnv64(&bytes);
        self.write_atomic(&self.shard_path(id), &bytes)?;
        let invocations = reports.iter().map(|r| r.invocations.len()).sum::<usize>();
        self.shards.insert(
            id,
            ShardMeta { file_fnv, notebooks: reports.len(), invocations },
        );
        self.write_manifest()?;
        obs::counter_add("store.shards_written", 1);
        obs::counter_add("store.reports_written", reports.len() as u64);
        obs::counter_add("store.invocations_written", invocations as u64);
        obs::counter_add("store.bytes_written", bytes.len() as u64);
        Ok(())
    }

    fn read_shard_verified(&self, id: usize) -> io::Result<Vec<u8>> {
        let meta = self
            .shards
            .get(&id)
            .ok_or_else(|| bad_data(format!("shard {id} not in manifest")))?;
        let bytes = fs::read(self.shard_path(id))?;
        if fnv64(&bytes) != meta.file_fnv {
            return Err(bad_data(format!("shard {id} failed file checksum")));
        }
        Ok(bytes)
    }

    /// Load one completed shard's reports and stats.
    pub fn read_shard(&self, id: usize) -> io::Result<(Vec<ReplayReport>, RobustnessStats)> {
        let _span = obs::span("store_read");
        let bytes = self.read_shard_verified(id)?;
        let (reports, stats) = decode_shard(id, &bytes)?;
        obs::counter_add("store.shards_read", 1);
        obs::counter_add("store.reports_read", reports.len() as u64);
        Ok((reports, stats))
    }

    /// Load only a completed shard's robustness stats (skips decoding the
    /// report and invocation payloads).
    pub fn read_shard_stats(&self, id: usize) -> io::Result<RobustnessStats> {
        let bytes = self.read_shard_verified(id)?;
        if bytes.len() < 6 || bytes[..4] != MAGIC {
            return Err(bad_data("bad shard magic"));
        }
        let mut pos = 6usize;
        loop {
            let (tag, payload) = next_record(&bytes, &mut pos)?;
            match tag {
                TAG_STATS => return decode_stats(payload),
                TAG_END => return Err(bad_data("shard missing stats record")),
                _ => {}
            }
        }
    }

    /// Stream every completed shard's reports in shard-id order, holding
    /// one shard in memory at a time. This is the bounded-memory read path
    /// training uses; concatenated output equals the in-memory
    /// `replay_corpus` report order exactly.
    pub fn reports(&self) -> ReportIter<'_> {
        ReportIter {
            store: self,
            shard_ids: self.completed_shards(),
            next_shard: 0,
            buffered: Vec::new(),
        }
    }
}

/// Streaming reader over all completed shards (see [`SampleStore::reports`]).
pub struct ReportIter<'a> {
    store: &'a SampleStore,
    shard_ids: Vec<usize>,
    next_shard: usize,
    /// Current shard's reports, reversed so `pop` yields original order.
    buffered: Vec<ReplayReport>,
}

impl Iterator for ReportIter<'_> {
    type Item = io::Result<ReplayReport>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(rep) = self.buffered.pop() {
                return Some(Ok(rep));
            }
            if self.next_shard >= self.shard_ids.len() {
                return None;
            }
            let id = self.shard_ids[self.next_shard];
            self.next_shard += 1;
            match self.store.read_shard(id) {
                Ok((mut reports, _stats)) => {
                    reports.reverse();
                    self.buffered = reports;
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ReplayErrorKind;

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::new(
                "k",
                vec![Value::Int(1), Value::Null, Value::Str("x".into()), Value::Date(86400)],
            ),
            Column::new(
                "v",
                vec![
                    Value::Float(1.5),
                    Value::Float(-0.0),
                    Value::Float(f64::from_bits(0x7ff8_0000_0000_1234)),
                    Value::Bool(true),
                ],
            ),
        ])
        .unwrap()
    }

    fn invocation(op: OpKind, params: OpParams) -> OpInvocation {
        OpInvocation {
            notebook_id: "nb-join-00001".into(),
            dataset_group: "grp-join-00001".into(),
            cell_index: 3,
            op,
            inputs: vec![frame(), frame()],
            params,
            input_hashes: vec![11, 22],
            output_hash: 33,
            output_rows: 4,
            output_cols: 2,
        }
    }

    fn all_params() -> Vec<(OpKind, OpParams)> {
        vec![
            (
                OpKind::Merge,
                OpParams::Merge {
                    left_on: vec!["a".into()],
                    right_on: vec!["b".into()],
                    how: JoinType::Outer,
                    suffixes: ("_x".into(), "_y".into()),
                    sort: false,
                    indicator: true,
                },
            ),
            (
                OpKind::GroupBy,
                OpParams::GroupBy {
                    keys: vec!["k".into()],
                    aggs: vec![("v".into(), Agg::Mean), ("w".into(), Agg::First)],
                    sort: true,
                    dropna: false,
                },
            ),
            (
                OpKind::Pivot,
                OpParams::Pivot {
                    index: vec!["i".into()],
                    header: vec!["h".into()],
                    values: "v".into(),
                    agg: Agg::Sum,
                    fill_value: Some(-0.0),
                    margins: true,
                },
            ),
            (
                OpKind::Melt,
                OpParams::Melt {
                    id_vars: vec!["i".into()],
                    value_vars: vec!["a".into(), "b".into()],
                    var_name: "variable".into(),
                    value_name: "value".into(),
                },
            ),
            (OpKind::Concat, OpParams::Concat { num_frames: 2, axis: 0, ignore_index: true }),
            (OpKind::DropNa, OpParams::DropNa { how_all: false, subset: None }),
            (OpKind::FillNa, OpParams::FillNa { value: "0".into() }),
            (
                OpKind::JsonNormalize,
                OpParams::JsonNormalize { record_path: Some(vec!["r".into()]) },
            ),
        ]
    }

    fn report() -> ReplayReport {
        let mut flow = FlowGraph::new();
        flow.record(OpKind::Merge, vec![1, 2], 3);
        flow.record(OpKind::Pivot, vec![3], 4);
        ReplayReport {
            notebook_id: "nb-join-00001".into(),
            dataset_group: "grp-join-00001".into(),
            outcome: ReplayOutcome::Success,
            cells_executed: 5,
            invocations: all_params()
                .into_iter()
                .map(|(op, p)| invocation(op, p))
                .collect(),
            flow,
            packages_installed: vec!["seaborn".into()],
            files_recovered: vec!["a.csv".into()],
            cell_retries: 2,
            injected_faults: vec![ReplayErrorKind::Timeout, ReplayErrorKind::IoPath],
        }
    }

    fn stats() -> RobustnessStats {
        let mut s = RobustnessStats {
            fault_spec: Some("seed=1;rate=0.1".into()),
            notebooks: 7,
            failed_first_pass: 2,
            retried_notebooks: 2,
            recovered_notebooks: 1,
            quarantined_notebooks: 1,
            cell_retries: 9,
            ..RobustnessStats::default()
        };
        s.io_path.injected = 3;
        s.timeout.quarantined = 1;
        s
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "autosuggest-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn invocation_roundtrip_all_params_bitexact() {
        for (op, params) in all_params() {
            let inv = invocation(op, params);
            let decoded = decode_invocation(&encode_invocation(&inv)).unwrap();
            assert_eq!(format!("{inv:?}"), format!("{decoded:?}"));
            // Float bit patterns survive exactly (Debug can mask NaN payloads).
            for (a, b) in inv.inputs.iter().zip(decoded.inputs.iter()) {
                for (ca, cb) in a.columns().iter().zip(b.columns().iter()) {
                    for (va, vb) in ca.values().iter().zip(cb.values().iter()) {
                        if let (Value::Float(x), Value::Float(y)) = (va, vb) {
                            assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shard_roundtrip_preserves_reports_and_stats() {
        let reports = vec![report(), {
            let mut r = report();
            r.notebook_id = "nb-json-00002".into();
            r.outcome = ReplayOutcome::MissingFile("gone.csv".into());
            r.invocations.clear();
            r
        }];
        let s = stats();
        let bytes = encode_shard(4, &reports, &s);
        let (decoded, ds) = decode_shard(4, &bytes).unwrap();
        assert_eq!(format!("{reports:?}"), format!("{decoded:?}"));
        assert_eq!(s, ds);
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let reports = vec![report()];
        let mut bytes = encode_shard(0, &reports, &stats());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode_shard(0, &bytes).is_err());
    }

    #[test]
    fn store_write_read_and_resume() {
        let root = tmpdir("resume");
        let mut store = SampleStore::open(&root, "corpus-a", 2, 3).unwrap();
        assert!(!store.is_complete(0));
        store.write_shard(0, &[report()], &stats()).unwrap();
        store.write_shard(2, &[], &RobustnessStats::default()).unwrap();

        // Reopen with the same identity: completed shards survive.
        let store2 = SampleStore::open(&root, "corpus-a", 2, 3).unwrap();
        assert_eq!(store2.completed_shards(), vec![0, 2]);
        let (reports, _) = store2.read_shard(0).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].notebook_id, "nb-join-00001");

        // Reopen with a different corpus id: store resets.
        let store3 = SampleStore::open(&root, "corpus-b", 2, 3).unwrap();
        assert!(store3.completed_shards().is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_shard_file_is_dropped_on_open() {
        let root = tmpdir("corrupt");
        let mut store = SampleStore::open(&root, "corpus-a", 2, 2).unwrap();
        store.write_shard(0, &[report()], &stats()).unwrap();
        store.write_shard(1, &[], &RobustnessStats::default()).unwrap();
        let shard0 = root.join("shards").join("shard-00000.asg");
        let mut bytes = fs::read(&shard0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&shard0, bytes).unwrap();

        let store2 = SampleStore::open(&root, "corpus-a", 2, 2).unwrap();
        assert_eq!(store2.completed_shards(), vec![1]);
        assert!(!shard0.exists(), "corrupt shard should be deleted");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let root = tmpdir("tmpsweep");
        fs::create_dir_all(root.join("shards")).unwrap();
        let orphan = root.join("shards").join("shard-00000.tmp12345-1");
        fs::write(&orphan, b"partial").unwrap();
        let orphan2 = root.join("manifest.tmp12345-2");
        fs::write(&orphan2, b"partial").unwrap();

        let _store = SampleStore::open(&root, "corpus-a", 2, 2).unwrap();
        assert!(!orphan.exists());
        assert!(!orphan2.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn report_iter_streams_in_shard_order() {
        let root = tmpdir("iter");
        let mut store = SampleStore::open(&root, "corpus-a", 1, 3).unwrap();
        for id in [2usize, 0, 1] {
            let mut rep = report();
            rep.notebook_id = format!("nb-{id}");
            rep.invocations.clear();
            store.write_shard(id, &[rep], &RobustnessStats::default()).unwrap();
        }
        let ids: Vec<String> = store
            .reports()
            .map(|r| r.unwrap().notebook_id)
            .collect();
        assert_eq!(ids, vec!["nb-0", "nb-1", "nb-2"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn read_shard_stats_skips_payload_decoding() {
        let root = tmpdir("stats");
        let mut store = SampleStore::open(&root, "corpus-a", 1, 1).unwrap();
        store.write_shard(0, &[report()], &stats()).unwrap();
        assert_eq!(store.read_shard_stats(0).unwrap(), stats());
        let _ = fs::remove_dir_all(&root);
    }
}
