//! The replay engine (§3.2): execute notebooks cell-by-cell, repair
//! missing files and packages, and instrument every operator invocation.

use crate::datasets::{extract_urls, DatasetRepository};
use crate::flowgraph::{FlowGraph, OpKind};
use crate::lang::{expr_inputs, Expr, FillValue, Stmt};
use crate::notebook::Notebook;
use autosuggest_dataframe::ops::{self, Agg, DropHow, JoinType};
use autosuggest_dataframe::{io, DataFrame, Value};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Full parameterisation of one operator call — explicit arguments plus the
/// implicit defaults Pandas would fill in, which the paper logs too ("8
/// implicit parameters that use default values").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpParams {
    Merge {
        left_on: Vec<String>,
        right_on: Vec<String>,
        how: JoinType,
        // Implicit defaults (constant under our replay, logged for fidelity).
        suffixes: (String, String),
        sort: bool,
        indicator: bool,
    },
    GroupBy {
        keys: Vec<String>,
        aggs: Vec<(String, Agg)>,
        sort: bool,
        dropna: bool,
    },
    Pivot {
        index: Vec<String>,
        header: Vec<String>,
        values: String,
        agg: Agg,
        fill_value: Option<f64>,
        margins: bool,
    },
    Melt {
        id_vars: Vec<String>,
        value_vars: Vec<String>,
        var_name: String,
        value_name: String,
    },
    Concat {
        num_frames: usize,
        axis: u8,
        ignore_index: bool,
    },
    DropNa {
        how_all: bool,
        subset: Option<Vec<String>>,
    },
    FillNa {
        value: String,
    },
    JsonNormalize {
        record_path: Option<Vec<String>>,
    },
}

/// One instrumented operator invocation: the paper's unit of training data.
/// Carries full input tables, all parameters, and output identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpInvocation {
    pub notebook_id: String,
    pub dataset_group: String,
    pub cell_index: usize,
    pub op: OpKind,
    /// Full dumps of the input frames, in call order.
    pub inputs: Vec<DataFrame>,
    pub params: OpParams,
    pub input_hashes: Vec<u64>,
    pub output_hash: u64,
    pub output_rows: usize,
    pub output_cols: usize,
}

/// Why a cell (and hence its notebook) failed to replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayOutcome {
    Success,
    /// A data file could not be resolved by any repair strategy.
    MissingFile(String),
    /// An imported package is absent and not installable.
    MissingPackage(String),
    /// The cell exceeded the execution budget (the paper's 5-minute
    /// timeout, modelled as a row-processing budget).
    Timeout,
    /// The operator itself failed (schema mismatch etc.).
    ExecutionError(String),
}

/// The replay result for one notebook.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    pub notebook_id: String,
    pub dataset_group: String,
    pub outcome: ReplayOutcome,
    /// Cells successfully executed before failure (== all cells on success).
    pub cells_executed: usize,
    /// Instrumented invocations from successfully executed cells.
    pub invocations: Vec<OpInvocation>,
    pub flow: FlowGraph,
    /// Packages installed on demand while replaying.
    pub packages_installed: Vec<String>,
    /// Files recovered via basename search / URLs / the dataset API.
    pub files_recovered: Vec<String>,
}

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Total rows an operator may process per cell before the simulated
    /// timeout fires.
    pub cell_row_budget: usize,
    /// Maximum repair-and-retry attempts per cell.
    pub max_retries: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { cell_row_budget: 2_000_000, max_retries: 8 }
    }
}

/// The replay engine: holds the package registry (what `pip install` can
/// see) and the external dataset repository.
pub struct ReplayEngine {
    config: ReplayConfig,
    /// Packages `pip install` can resolve.
    pub package_registry: HashSet<String>,
    /// Packages pre-installed in the base environment.
    pub preinstalled: HashSet<String>,
    pub repository: DatasetRepository,
}

impl ReplayEngine {
    pub fn new(repository: DatasetRepository) -> Self {
        let preinstalled: HashSet<String> =
            ["pandas", "numpy", "json"].iter().map(|s| s.to_string()).collect();
        let package_registry: HashSet<String> = [
            "pandas", "numpy", "json", "matplotlib", "seaborn", "sklearn",
            "scipy", "statsmodels", "xgboost",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        ReplayEngine {
            config: ReplayConfig::default(),
            package_registry,
            preinstalled,
            repository,
        }
    }

    pub fn with_config(mut self, config: ReplayConfig) -> Self {
        self.config = config;
        self
    }

    /// Replay one notebook end to end.
    pub fn replay(&self, nb: &Notebook) -> ReplayReport {
        let mut env = Env {
            vars: HashMap::new(),
            installed: self.preinstalled.clone(),
            files: nb.repo_files.clone(),
        };
        let mut report = ReplayReport {
            notebook_id: nb.id.clone(),
            dataset_group: nb.dataset_group.clone(),
            outcome: ReplayOutcome::Success,
            cells_executed: 0,
            invocations: Vec::new(),
            flow: FlowGraph::new(),
            packages_installed: Vec::new(),
            files_recovered: Vec::new(),
        };

        for (cell_idx, _cell) in nb.cells.iter().enumerate() {
            let mut attempts = 0;
            loop {
                attempts += 1;
                // Each attempt runs against a snapshot so failed partial
                // execution does not leak state or log spurious invocations.
                let mut trial_env = env.clone();
                let mut trial_log: Vec<OpInvocation> = Vec::new();
                let mut trial_flow: Vec<(OpKind, Vec<u64>, u64)> = Vec::new();
                let mut budget = self.config.cell_row_budget;

                let result = self.run_cell(
                    nb,
                    cell_idx,
                    &mut trial_env,
                    &mut trial_log,
                    &mut trial_flow,
                    &mut budget,
                );
                match result {
                    Ok(()) => {
                        env = trial_env;
                        report.invocations.extend(trial_log);
                        for (op, ins, out) in trial_flow {
                            report.flow.record(op, ins, out);
                        }
                        report.cells_executed += 1;
                        break;
                    }
                    Err(err) if attempts <= self.config.max_retries => {
                        // §3.2: parse the error message and attempt repair.
                        if let Some(pkg) = parse_missing_package(&err) {
                            if self.package_registry.contains(&pkg) {
                                env.installed.insert(pkg.clone());
                                report.packages_installed.push(pkg);
                                continue;
                            }
                            report.outcome = ReplayOutcome::MissingPackage(pkg);
                            return report;
                        }
                        if let Some(path) = parse_missing_file(&err) {
                            match self.resolve_file(&path, nb, cell_idx, &env) {
                                Some((resolved_name, content)) => {
                                    env.files.insert(resolved_name.clone(), content);
                                    report.files_recovered.push(resolved_name);
                                    continue;
                                }
                                None => {
                                    report.outcome = ReplayOutcome::MissingFile(path);
                                    return report;
                                }
                            }
                        }
                        if err == "timeout" {
                            report.outcome = ReplayOutcome::Timeout;
                            return report;
                        }
                        report.outcome = ReplayOutcome::ExecutionError(err);
                        return report;
                    }
                    Err(err) => {
                        report.outcome = ReplayOutcome::ExecutionError(format!(
                            "retries exhausted: {err}"
                        ));
                        return report;
                    }
                }
            }
        }
        report
    }

    /// Resolve a missing data file with the paper's three strategies:
    /// (1) basename search in the repository, (2) URLs in adjacent
    /// markdown, (3) the Kaggle-style dataset API.
    fn resolve_file(
        &self,
        path: &str,
        nb: &Notebook,
        cell_idx: usize,
        env: &Env,
    ) -> Option<(String, String)> {
        let target = basename(path);
        // (1) Search the repo by file name, ignoring the bogus directory.
        let mut repo_paths: Vec<&String> = env.files.keys().collect();
        repo_paths.sort();
        for p in repo_paths {
            if basename(p) == target {
                return Some((path.to_string(), env.files[p].clone()));
            }
        }
        // (2) URLs in markdown adjacent to the failing cell.
        for probe in [cell_idx, cell_idx.saturating_sub(1)] {
            if let Some(md) = nb.cells.get(probe).and_then(|c| c.markdown.as_ref()) {
                for url in extract_urls(md) {
                    if let Some(content) = self.repository.fetch_url(url) {
                        return Some((path.to_string(), content.to_string()));
                    }
                }
            }
        }
        // (3) Kaggle dataset API by basename.
        self.repository
            .find_file_by_name(&target)
            .map(|content| (path.to_string(), content.to_string()))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        nb: &Notebook,
        cell_idx: usize,
        env: &mut Env,
        log: &mut Vec<OpInvocation>,
        flow: &mut Vec<(OpKind, Vec<u64>, u64)>,
        budget: &mut usize,
    ) -> Result<(), String> {
        let cell = &nb.cells[cell_idx];
        for stmt in &cell.ast {
            match stmt {
                Stmt::Import { package } => {
                    if !env.installed.contains(package) {
                        return Err(format!(
                            "ModuleNotFoundError: No module named '{package}'"
                        ));
                    }
                }
                Stmt::Assign { var, expr } => {
                    let frame = self.eval(nb, cell_idx, expr, env, log, flow, budget)?;
                    env.vars.insert(var.clone(), frame);
                }
                Stmt::Inspect { expr } => {
                    self.eval(nb, cell_idx, expr, env, log, flow, budget)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn eval(
        &self,
        nb: &Notebook,
        cell_idx: usize,
        expr: &Expr,
        env: &mut Env,
        log: &mut Vec<OpInvocation>,
        flow: &mut Vec<(OpKind, Vec<u64>, u64)>,
        budget: &mut usize,
    ) -> Result<DataFrame, String> {
        // Gather input frames first (shared error for unknown variables).
        let mut inputs: Vec<DataFrame> = Vec::new();
        for v in expr_inputs(expr) {
            match env.vars.get(v) {
                Some(f) => inputs.push(f.clone()),
                None => return Err(format!("NameError: name '{v}' is not defined")),
            }
        }
        let in_rows: usize = inputs.iter().map(DataFrame::num_rows).sum();
        if in_rows > *budget {
            return Err("timeout".into());
        }
        *budget -= in_rows;

        let (op, params, output): (Option<OpKind>, Option<OpParams>, DataFrame) = match expr {
            Expr::ReadCsv { path } => {
                let content = env
                    .files
                    .get(path)
                    .ok_or_else(|| format!("FileNotFoundError: No such file: '{path}'"))?;
                let df = io::read_csv_str(content).map_err(|e| e.to_string())?;
                (None, None, df)
            }
            Expr::JsonNormalize { path, record_path } => {
                let content = env
                    .files
                    .get(path)
                    .ok_or_else(|| format!("FileNotFoundError: No such file: '{path}'"))?;
                let doc: serde_json::Value =
                    serde_json::from_str(content).map_err(|e| e.to_string())?;
                let rp: Option<Vec<&str>> = record_path
                    .as_ref()
                    .map(|p| p.iter().map(String::as_str).collect());
                let df = ops::json_normalize(&doc, rp.as_deref())
                    .map_err(|e| e.to_string())?;
                (
                    Some(OpKind::JsonNormalize),
                    Some(OpParams::JsonNormalize { record_path: record_path.clone() }),
                    df,
                )
            }
            Expr::Merge { left_on, right_on, how, .. } => {
                let lo: Vec<&str> = left_on.iter().map(String::as_str).collect();
                let ro: Vec<&str> = right_on.iter().map(String::as_str).collect();
                let df = ops::merge(&inputs[0], &inputs[1], &lo, &ro, *how)
                    .map_err(|e| e.to_string())?;
                (
                    Some(OpKind::Merge),
                    Some(OpParams::Merge {
                        left_on: left_on.clone(),
                        right_on: right_on.clone(),
                        how: *how,
                        suffixes: ("_x".into(), "_y".into()),
                        sort: false,
                        indicator: false,
                    }),
                    df,
                )
            }
            Expr::GroupBy { keys, aggs, .. } => {
                let k: Vec<&str> = keys.iter().map(String::as_str).collect();
                let a: Vec<(&str, Agg)> =
                    aggs.iter().map(|(c, g)| (c.as_str(), *g)).collect();
                let df = ops::groupby(&inputs[0], &k, &a).map_err(|e| e.to_string())?;
                (
                    Some(OpKind::GroupBy),
                    Some(OpParams::GroupBy {
                        keys: keys.clone(),
                        aggs: aggs.clone(),
                        sort: false,
                        dropna: true,
                    }),
                    df,
                )
            }
            Expr::Pivot { index, header, values, agg, .. } => {
                let i: Vec<&str> = index.iter().map(String::as_str).collect();
                let h: Vec<&str> = header.iter().map(String::as_str).collect();
                let df = ops::pivot_table(&inputs[0], &i, &h, values, *agg)
                    .map_err(|e| e.to_string())?;
                (
                    Some(OpKind::Pivot),
                    Some(OpParams::Pivot {
                        index: index.clone(),
                        header: header.clone(),
                        values: values.clone(),
                        agg: *agg,
                        fill_value: None,
                        margins: false,
                    }),
                    df,
                )
            }
            Expr::Melt { id_vars, value_vars, var_name, value_name, .. } => {
                let iv: Vec<&str> = id_vars.iter().map(String::as_str).collect();
                let vv: Vec<&str> = value_vars.iter().map(String::as_str).collect();
                let df = ops::melt(&inputs[0], &iv, &vv, var_name, value_name)
                    .map_err(|e| e.to_string())?;
                (
                    Some(OpKind::Melt),
                    Some(OpParams::Melt {
                        id_vars: id_vars.clone(),
                        value_vars: value_vars.clone(),
                        var_name: var_name.clone(),
                        value_name: value_name.clone(),
                    }),
                    df,
                )
            }
            Expr::Concat { frames } => {
                let refs: Vec<&DataFrame> = inputs.iter().collect();
                let df = ops::concat(&refs).map_err(|e| e.to_string())?;
                (
                    Some(OpKind::Concat),
                    Some(OpParams::Concat {
                        num_frames: frames.len(),
                        axis: 0,
                        ignore_index: true,
                    }),
                    df,
                )
            }
            Expr::DropNa { how_all, subset, .. } => {
                let how = if *how_all { DropHow::All } else { DropHow::Any };
                let sub: Option<Vec<&str>> =
                    subset.as_ref().map(|s| s.iter().map(String::as_str).collect());
                let df = ops::dropna(&inputs[0], how, sub.as_deref())
                    .map_err(|e| e.to_string())?;
                (
                    Some(OpKind::DropNa),
                    Some(OpParams::DropNa { how_all: *how_all, subset: subset.clone() }),
                    df,
                )
            }
            Expr::FillNa { value, .. } => {
                let v = match value {
                    FillValue::Int(i) => Value::Int(*i),
                    FillValue::Float(f) => Value::Float(*f),
                    FillValue::Str(s) => Value::Str(s.clone()),
                };
                let df =
                    ops::fillna_all(&inputs[0], &v).map_err(|e| e.to_string())?;
                (
                    Some(OpKind::FillNa),
                    Some(OpParams::FillNa { value: v.to_string() }),
                    df,
                )
            }
            Expr::Var(_) => (None, None, inputs[0].clone()),
        };

        if let (Some(op), Some(params)) = (op, params) {
            let input_hashes: Vec<u64> =
                inputs.iter().map(DataFrame::content_hash).collect();
            let output_hash = output.content_hash();
            flow.push((op, input_hashes.clone(), output_hash));
            log.push(OpInvocation {
                notebook_id: nb.id.clone(),
                dataset_group: nb.dataset_group.clone(),
                cell_index: cell_idx,
                op,
                inputs,
                params,
                input_hashes,
                output_hash,
                output_rows: output.num_rows(),
                output_cols: output.num_columns(),
            });
        }
        Ok(output)
    }
}

/// Environment state threaded through cell execution.
#[derive(Clone)]
struct Env {
    vars: HashMap<String, DataFrame>,
    installed: HashSet<String>,
    /// Resolvable file paths → contents (repo clone + recovered downloads).
    files: HashMap<String, String>,
}

/// Parse `ModuleNotFoundError: No module named 'pkg'`.
pub fn parse_missing_package(err: &str) -> Option<String> {
    let marker = "No module named '";
    let start = err.find(marker)? + marker.len();
    let rest = &err[start..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

/// Parse `FileNotFoundError: No such file: 'path'`.
pub fn parse_missing_file(err: &str) -> Option<String> {
    let marker = "No such file: '";
    let start = err.find(marker)? + marker.len();
    let rest = &err[start..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

/// The basename of a path in either Unix or Windows notation (authors
/// hard-code both, §3.2).
pub fn basename(path: &str) -> String {
    path.rsplit(['/', '\\']).next().unwrap_or(path).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Stmt;
    use crate::notebook::{Cell, Notebook};

    fn csv_a() -> &'static str {
        "k,v\n1,10\n2,20\n3,30\n"
    }

    fn read_nb(path: &str, file_at: Option<&str>) -> Notebook {
        let mut nb = Notebook::new("t", "g");
        if let Some(p) = file_at {
            nb.add_file(p, csv_a());
        }
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "df".into(),
            expr: Expr::ReadCsv { path: path.into() },
        }]));
        nb
    }

    #[test]
    fn direct_path_replays() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let report = engine.replay(&read_nb("data.csv", Some("data.csv")));
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.cells_executed, 1);
    }

    #[test]
    fn absolute_path_resolved_by_basename_search() {
        // The §3.2 case: a hard-coded Windows path, file present in repo.
        let engine = ReplayEngine::new(DatasetRepository::new());
        let nb = read_nb("D:\\my_project\\data.csv", Some("input/data.csv"));
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.files_recovered.len(), 1);
    }

    #[test]
    fn url_in_markdown_recovers_file() {
        let mut repo = DatasetRepository::new();
        repo.add_url("https://data.example.com/data.csv", csv_a());
        let engine = ReplayEngine::new(repo);
        let mut nb = read_nb("data.csv", None);
        nb.cells[0].markdown =
            Some("Download from https://data.example.com/data.csv first".into());
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
    }

    #[test]
    fn kaggle_repository_recovers_file() {
        let mut repo = DatasetRepository::new();
        repo.add_dataset_file("someone/numbers", "data.csv", csv_a());
        let engine = ReplayEngine::new(repo);
        let report = engine.replay(&read_nb("data.csv", None));
        assert_eq!(report.outcome, ReplayOutcome::Success);
    }

    #[test]
    fn unresolvable_file_fails() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let report = engine.replay(&read_nb("secret.csv", None));
        assert_eq!(report.outcome, ReplayOutcome::MissingFile("secret.csv".into()));
        assert_eq!(report.cells_executed, 0);
    }

    #[test]
    fn installable_package_is_installed_and_cell_retried() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.add_file("data.csv", csv_a());
        nb.push_cell(Cell::code(vec![
            Stmt::Import { package: "seaborn".into() },
            Stmt::Assign {
                var: "df".into(),
                expr: Expr::ReadCsv { path: "data.csv".into() },
            },
        ]));
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.packages_installed, vec!["seaborn".to_string()]);
    }

    #[test]
    fn unknown_package_fails_notebook() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.push_cell(Cell::code(vec![Stmt::Import {
            package: "proprietary_internal_lib".into(),
        }]));
        let report = engine.replay(&nb);
        assert_eq!(
            report.outcome,
            ReplayOutcome::MissingPackage("proprietary_internal_lib".into())
        );
    }

    #[test]
    fn merge_invocation_is_instrumented_with_full_params() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.add_file("l.csv", "k,a\n1,x\n2,y\n3,z\n4,w\n5,q\n");
        nb.add_file("r.csv", "k,b\n1,p\n2,q\n3,r\n4,s\n5,t\n");
        nb.push_cell(Cell::code(vec![
            Stmt::Assign { var: "l".into(), expr: Expr::ReadCsv { path: "l.csv".into() } },
            Stmt::Assign { var: "r".into(), expr: Expr::ReadCsv { path: "r.csv".into() } },
            Stmt::Assign {
                var: "m".into(),
                expr: Expr::Merge {
                    left: "l".into(),
                    right: "r".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["k".into()],
                    how: JoinType::Left,
                },
            },
        ]));
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.invocations.len(), 1);
        let inv = &report.invocations[0];
        assert_eq!(inv.op, OpKind::Merge);
        assert_eq!(inv.inputs.len(), 2);
        assert_eq!(inv.inputs[0].num_rows(), 5);
        match &inv.params {
            OpParams::Merge { how, left_on, suffixes, .. } => {
                assert_eq!(*how, JoinType::Left);
                assert_eq!(left_on, &vec!["k".to_string()]);
                assert_eq!(suffixes.0, "_x"); // implicit default logged
            }
            other => panic!("wrong params {other:?}"),
        }
        assert_eq!(report.flow.op_sequence(), vec![OpKind::Merge]);
    }

    #[test]
    fn failed_cell_leaves_no_partial_invocations() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.add_file("l.csv", "k,a\n1,x\n");
        nb.push_cell(Cell::code(vec![
            Stmt::Assign { var: "l".into(), expr: Expr::ReadCsv { path: "l.csv".into() } },
            // groupby on a column that does not exist.
            Stmt::Assign {
                var: "g".into(),
                expr: Expr::GroupBy {
                    frame: "l".into(),
                    keys: vec!["missing".into()],
                    aggs: vec![("a".into(), Agg::Count)],
                },
            },
        ]));
        let report = engine.replay(&nb);
        assert!(matches!(report.outcome, ReplayOutcome::ExecutionError(_)));
        assert!(report.invocations.is_empty());
        assert_eq!(report.cells_executed, 0);
    }

    #[test]
    fn timeout_fires_on_budget_exhaustion() {
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_config(ReplayConfig { cell_row_budget: 2, max_retries: 2 });
        let mut nb = Notebook::new("t", "g");
        nb.add_file("l.csv", csv_a());
        nb.push_cell(Cell::code(vec![
            Stmt::Assign { var: "l".into(), expr: Expr::ReadCsv { path: "l.csv".into() } },
            Stmt::Assign {
                var: "d".into(),
                expr: Expr::DropNa { frame: "l".into(), how_all: false, subset: None },
            },
        ]));
        assert_eq!(engine.replay(&nb).outcome, ReplayOutcome::Timeout);
    }

    #[test]
    fn error_message_parsers() {
        assert_eq!(
            parse_missing_package("ModuleNotFoundError: No module named 'seaborn'"),
            Some("seaborn".into())
        );
        assert_eq!(parse_missing_package("SyntaxError"), None);
        assert_eq!(
            parse_missing_file("FileNotFoundError: No such file: 'a/b.csv'"),
            Some("a/b.csv".into())
        );
        assert_eq!(basename("D:\\x\\y.csv"), "y.csv");
        assert_eq!(basename("a/b/c.csv"), "c.csv");
        assert_eq!(basename("plain.csv"), "plain.csv");
    }

    #[test]
    fn undefined_variable_is_execution_error() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "x".into(),
            expr: Expr::DropNa { frame: "ghost".into(), how_all: false, subset: None },
        }]));
        let report = engine.replay(&nb);
        assert!(matches!(report.outcome, ReplayOutcome::ExecutionError(m) if m.contains("NameError")));
    }
}
