//! The replay engine (§3.2): execute notebooks cell-by-cell, repair
//! missing files and packages, and instrument every operator invocation.
//!
//! Failures are classified into the [`ReplayError`] taxonomy and handled
//! per kind: missing packages are installed, missing files are resolved,
//! panics are caught (`catch_unwind`) and retried with a bound, timeouts
//! and unresolvable paths fail the notebook but remain eligible for
//! notebook-level quarantine retry in [`ReplayEngine::replay_corpus`].
//! Seeded faults ([`FaultSpec`]) can be injected into cell execution to
//! exercise every one of those paths deterministically.

use crate::datasets::{extract_urls, DatasetRepository};
use crate::error::{ReplayError, ReplayErrorKind};
use crate::faults::{FaultKind, FaultSpec, RobustnessStats};
use crate::flowgraph::{FlowGraph, OpKind};
use crate::lang::{expr_inputs, Expr, FillValue, Stmt};
use crate::notebook::Notebook;
use autosuggest_dataframe::ops::{self, Agg, DropHow, JoinType};
use autosuggest_dataframe::{io, DataFrame, Value};
use autosuggest_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Full parameterisation of one operator call — explicit arguments plus the
/// implicit defaults Pandas would fill in, which the paper logs too ("8
/// implicit parameters that use default values").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpParams {
    Merge {
        left_on: Vec<String>,
        right_on: Vec<String>,
        how: JoinType,
        // Implicit defaults (constant under our replay, logged for fidelity).
        suffixes: (String, String),
        sort: bool,
        indicator: bool,
    },
    GroupBy {
        keys: Vec<String>,
        aggs: Vec<(String, Agg)>,
        sort: bool,
        dropna: bool,
    },
    Pivot {
        index: Vec<String>,
        header: Vec<String>,
        values: String,
        agg: Agg,
        fill_value: Option<f64>,
        margins: bool,
    },
    Melt {
        id_vars: Vec<String>,
        value_vars: Vec<String>,
        var_name: String,
        value_name: String,
    },
    Concat {
        num_frames: usize,
        axis: u8,
        ignore_index: bool,
    },
    DropNa {
        how_all: bool,
        subset: Option<Vec<String>>,
    },
    FillNa {
        value: String,
    },
    JsonNormalize {
        record_path: Option<Vec<String>>,
    },
}

/// One instrumented operator invocation: the paper's unit of training data.
/// Carries full input tables, all parameters, and output identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpInvocation {
    pub notebook_id: String,
    pub dataset_group: String,
    pub cell_index: usize,
    pub op: OpKind,
    /// Full dumps of the input frames, in call order.
    pub inputs: Vec<DataFrame>,
    pub params: OpParams,
    pub input_hashes: Vec<u64>,
    pub output_hash: u64,
    pub output_rows: usize,
    pub output_cols: usize,
}

/// Why a cell (and hence its notebook) failed to replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayOutcome {
    Success,
    /// A data file could not be resolved by any repair strategy.
    MissingFile(String),
    /// An imported package is absent and not installable.
    MissingPackage(String),
    /// The cell exceeded the execution budget (the paper's 5-minute
    /// timeout, modelled as a row-processing budget).
    Timeout,
    /// The operator itself failed (schema mismatch etc.).
    ExecutionError(String),
    /// A panic escaped an operator and retries did not clear it.
    OperatorPanic(String),
}

impl ReplayOutcome {
    /// The error kind behind a failed outcome (`None` for `Success`).
    pub fn failure_kind(&self) -> Option<ReplayErrorKind> {
        match self {
            ReplayOutcome::Success => None,
            ReplayOutcome::MissingFile(_) => Some(ReplayErrorKind::IoPath),
            ReplayOutcome::MissingPackage(_) => Some(ReplayErrorKind::MissingPackage),
            ReplayOutcome::Timeout => Some(ReplayErrorKind::Timeout),
            ReplayOutcome::ExecutionError(_) => Some(ReplayErrorKind::SchemaMismatch),
            ReplayOutcome::OperatorPanic(_) => Some(ReplayErrorKind::OperatorPanic),
        }
    }

    /// Map a terminal [`ReplayError`] to the notebook outcome.
    pub fn from_error(err: ReplayError) -> ReplayOutcome {
        match err.kind {
            ReplayErrorKind::IoPath => {
                ReplayOutcome::MissingFile(err.subject.unwrap_or(err.message))
            }
            ReplayErrorKind::MissingPackage => {
                ReplayOutcome::MissingPackage(err.subject.unwrap_or(err.message))
            }
            ReplayErrorKind::Timeout => ReplayOutcome::Timeout,
            ReplayErrorKind::SchemaMismatch => ReplayOutcome::ExecutionError(err.message),
            ReplayErrorKind::OperatorPanic => ReplayOutcome::OperatorPanic(err.message),
        }
    }
}

/// The replay result for one notebook.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    pub notebook_id: String,
    pub dataset_group: String,
    pub outcome: ReplayOutcome,
    /// Cells successfully executed before failure (== all cells on success).
    pub cells_executed: usize,
    /// Instrumented invocations from successfully executed cells.
    pub invocations: Vec<OpInvocation>,
    pub flow: FlowGraph,
    /// Packages installed on demand while replaying.
    pub packages_installed: Vec<String>,
    /// Files recovered via basename search / URLs / the dataset API.
    pub files_recovered: Vec<String>,
    /// Cell-level retry attempts performed (installs, recoveries, panic
    /// retries) during this replay.
    pub cell_retries: usize,
    /// Kinds of the faults injected into this replay, in injection order
    /// (empty when no fault spec is active).
    pub injected_faults: Vec<ReplayErrorKind>,
}

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Total rows an operator may process per cell before the simulated
    /// timeout fires.
    pub cell_row_budget: usize,
    /// Maximum repair-and-retry attempts per cell.
    pub max_retries: usize,
    /// Total notebook-level replay rounds in [`ReplayEngine::replay_corpus`]
    /// (first pass + quarantine retries). 3 → up to two retries per
    /// quarantined notebook.
    pub max_notebook_rounds: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { cell_row_budget: 2_000_000, max_retries: 8, max_notebook_rounds: 3 }
    }
}

/// The replay engine: holds the package registry (what `pip install` can
/// see) and the external dataset repository.
pub struct ReplayEngine {
    config: ReplayConfig,
    /// Packages `pip install` can resolve.
    pub package_registry: HashSet<String>,
    /// Packages pre-installed in the base environment.
    pub preinstalled: HashSet<String>,
    pub repository: DatasetRepository,
    /// Active fault-injection plan, if any.
    faults: Option<FaultSpec>,
}

impl ReplayEngine {
    pub fn new(repository: DatasetRepository) -> Self {
        let preinstalled: HashSet<String> =
            ["pandas", "numpy", "json"].iter().map(|s| s.to_string()).collect();
        let package_registry: HashSet<String> = [
            "pandas", "numpy", "json", "matplotlib", "seaborn", "sklearn",
            "scipy", "statsmodels", "xgboost",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        ReplayEngine {
            config: ReplayConfig::default(),
            package_registry,
            preinstalled,
            repository,
            faults: None,
        }
    }

    pub fn with_config(mut self, config: ReplayConfig) -> Self {
        self.config = config;
        self
    }

    /// Enable (or disable) deterministic fault injection.
    pub fn with_faults(mut self, faults: Option<FaultSpec>) -> Self {
        if faults.is_some() {
            silence_injected_panic_reports();
        }
        self.faults = faults;
        self
    }

    pub fn config(&self) -> &ReplayConfig {
        &self.config
    }

    pub fn faults(&self) -> Option<&FaultSpec> {
        self.faults.as_ref()
    }

    /// Replay one notebook end to end (quarantine round 0).
    pub fn replay(&self, nb: &Notebook) -> ReplayReport {
        self.replay_round(nb, 0)
    }

    /// Replay one notebook in a given quarantine `round` (the round salts
    /// fault-injection decisions so transient faults can clear on retry).
    ///
    /// Instrumented: opens a `nb:{id}` span (cell spans nest inside),
    /// records wall-clock into the `replay.notebook_seconds` histogram,
    /// and counts executed cells and logged invocations.
    pub fn replay_round(&self, nb: &Notebook, round: usize) -> ReplayReport {
        let _nb_span = obs::span(&format!("nb:{}", nb.id));
        let started = std::time::Instant::now();
        let report = self.replay_round_inner(nb, round);
        obs::observe_since("replay.notebook_seconds", started);
        obs::counter_add("replay.cells_executed", report.cells_executed as u64);
        obs::counter_add("replay.op_invocations", report.invocations.len() as u64);
        report
    }

    fn replay_round_inner(&self, nb: &Notebook, round: usize) -> ReplayReport {
        let mut env = Env {
            vars: HashMap::new(),
            installed: self.preinstalled.clone(),
            files: nb.repo_files.clone(),
        };
        let mut report = ReplayReport {
            notebook_id: nb.id.clone(),
            dataset_group: nb.dataset_group.clone(),
            outcome: ReplayOutcome::Success,
            cells_executed: 0,
            invocations: Vec::new(),
            flow: FlowGraph::new(),
            packages_installed: Vec::new(),
            files_recovered: Vec::new(),
            cell_retries: 0,
            injected_faults: Vec::new(),
        };

        for (cell_idx, _cell) in nb.cells.iter().enumerate() {
            let _cell_span = obs::span(&format!("cell{cell_idx}"));
            let mut attempts = 0;
            loop {
                attempts += 1;
                // Each attempt runs against a snapshot so failed partial
                // execution does not leak state or log spurious invocations.
                let mut trial_env = env.clone();
                let mut trial_log: Vec<OpInvocation> = Vec::new();
                let mut trial_flow: Vec<(OpKind, Vec<u64>, u64)> = Vec::new();
                let mut budget = self.config.cell_row_budget;
                let mut trial = CellTrial {
                    env: &mut trial_env,
                    log: &mut trial_log,
                    flow: &mut trial_flow,
                    budget: &mut budget,
                    injected: &mut report.injected_faults,
                    round,
                    attempt: attempts - 1,
                };

                // A panic anywhere inside the cell (planted operator bug or
                // injected fault) is caught here and classified, so no
                // notebook can take its batch down. The trial state is
                // discarded on failure, so a mid-cell unwind cannot leak
                // partial execution (`AssertUnwindSafe` is sound for it).
                let result = catch_unwind(AssertUnwindSafe(|| {
                    self.run_cell(nb, cell_idx, &mut trial)
                }))
                .unwrap_or_else(|payload| {
                    Err(ReplayError::operator_panic(autosuggest_parallel::panic_message(
                        payload.as_ref(),
                    )))
                });
                match result {
                    Ok(()) => {
                        env = trial_env;
                        report.invocations.extend(trial_log);
                        for (op, ins, out) in trial_flow {
                            report.flow.record(op, ins, out);
                        }
                        report.cells_executed += 1;
                        break;
                    }
                    Err(err) if attempts <= self.config.max_retries => {
                        // §3.2: classify the failure and attempt repair.
                        match err.kind {
                            ReplayErrorKind::MissingPackage => {
                                let pkg = err
                                    .package_name()
                                    .unwrap_or("unknown-package")
                                    .to_string();
                                if self.package_registry.contains(&pkg) {
                                    env.installed.insert(pkg.clone());
                                    report.packages_installed.push(pkg);
                                    report.cell_retries += 1;
                                    continue;
                                }
                                report.outcome = ReplayOutcome::MissingPackage(pkg);
                                return report;
                            }
                            ReplayErrorKind::IoPath => {
                                let path = err
                                    .missing_path()
                                    .unwrap_or("unknown-path")
                                    .to_string();
                                match self.resolve_file(&path, nb, cell_idx, &env) {
                                    Some((resolved_name, content)) => {
                                        env.files.insert(resolved_name.clone(), content);
                                        report.files_recovered.push(resolved_name);
                                        report.cell_retries += 1;
                                        continue;
                                    }
                                    None => {
                                        report.outcome = ReplayOutcome::MissingFile(path);
                                        return report;
                                    }
                                }
                            }
                            ReplayErrorKind::OperatorPanic => {
                                // Panics are often environmental; retry the
                                // cell within the attempt bound.
                                report.cell_retries += 1;
                                continue;
                            }
                            ReplayErrorKind::Timeout | ReplayErrorKind::SchemaMismatch => {
                                report.outcome = ReplayOutcome::from_error(err);
                                return report;
                            }
                        }
                    }
                    Err(mut err) => {
                        err.message = format!("retries exhausted: {}", err.message);
                        report.outcome = ReplayOutcome::from_error(err);
                        return report;
                    }
                }
            }
        }
        report
    }

    /// Replay a whole corpus with panic-isolated fan-out and
    /// quarantine-with-bounded-retry.
    ///
    /// First pass replays every notebook across the pool; notebooks that
    /// fail with a retryable kind ([`ReplayErrorKind::retryable`]) are
    /// quarantined and retried in later rounds (up to
    /// `max_notebook_rounds - 1` retries), with per-kind accounting.
    /// Reports come back in notebook order, bit-identical at any thread
    /// count.
    pub fn replay_corpus(&self, notebooks: &[Notebook]) -> (Vec<ReplayReport>, RobustnessStats) {
        let pool = autosuggest_parallel::Pool::global();
        let mut stats = RobustnessStats {
            fault_spec: self.faults.as_ref().map(FaultSpec::render),
            notebooks: notebooks.len(),
            ..Default::default()
        };

        let run_round = |idx: &[usize], round: usize| -> Vec<ReplayReport> {
            let firsts: Vec<Result<ReplayReport, ReplayError>> =
                pool.par_try_map(idx, |&i| Ok(self.replay_round(&notebooks[i], round)));
            firsts
                .into_iter()
                .zip(idx)
                .map(|(res, &i)| {
                    // A panic that escapes even the engine's own isolation
                    // (impossible barring engine bugs) still degrades to a
                    // per-notebook failure instead of aborting the batch.
                    res.unwrap_or_else(|err| failed_report(&notebooks[i], err))
                })
                .collect()
        };

        let all: Vec<usize> = (0..notebooks.len()).collect();
        let mut reports = run_round(&all, 0);
        for r in &reports {
            stats.cell_retries += r.cell_retries;
            for &k in &r.injected_faults {
                stats.kind_mut(k).injected += 1;
            }
            if let Some(kind) = r.outcome.failure_kind() {
                stats.failed_first_pass += 1;
                stats.kind_mut(kind).failures += 1;
            }
        }

        let mut entered_quarantine: HashSet<usize> = HashSet::new();
        for round in 1..self.config.max_notebook_rounds.max(1) {
            let retry_idx: Vec<usize> = reports
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.outcome.failure_kind().is_some_and(|k| k.retryable())
                })
                .map(|(i, _)| i)
                .collect();
            if retry_idx.is_empty() {
                break;
            }
            let retried = run_round(&retry_idx, round);
            for (&i, new_report) in retry_idx.iter().zip(retried) {
                let old_kind = reports[i]
                    .outcome
                    .failure_kind()
                    .unwrap_or(ReplayErrorKind::OperatorPanic);
                if entered_quarantine.insert(i) {
                    stats.retried_notebooks += 1;
                }
                stats.kind_mut(old_kind).retries += 1;
                stats.cell_retries += new_report.cell_retries;
                for &k in &new_report.injected_faults {
                    stats.kind_mut(k).injected += 1;
                }
                if new_report.outcome == ReplayOutcome::Success {
                    stats.recovered_notebooks += 1;
                    stats.kind_mut(old_kind).recovered += 1;
                }
                reports[i] = new_report;
            }
        }

        for r in &reports {
            if let Some(kind) = r.outcome.failure_kind() {
                if kind.retryable() {
                    stats.quarantined_notebooks += 1;
                    stats.kind_mut(kind).quarantined += 1;
                }
            }
        }
        stats.record_obs();
        (reports, stats)
    }

    /// Resolve a missing data file with the paper's three strategies:
    /// (1) basename search in the repository, (2) URLs in adjacent
    /// markdown, (3) the Kaggle-style dataset API.
    fn resolve_file(
        &self,
        path: &str,
        nb: &Notebook,
        cell_idx: usize,
        env: &Env,
    ) -> Option<(String, String)> {
        let target = basename(path);
        // (1) Search the repo by file name, ignoring the bogus directory.
        let mut repo_paths: Vec<&String> = env.files.keys().collect();
        repo_paths.sort();
        for p in repo_paths {
            if basename(p) == target {
                return Some((path.to_string(), env.files[p].clone()));
            }
        }
        // (2) URLs in markdown adjacent to the failing cell.
        for probe in [cell_idx, cell_idx.saturating_sub(1)] {
            if let Some(md) = nb.cells.get(probe).and_then(|c| c.markdown.as_ref()) {
                for url in extract_urls(md) {
                    if let Some(content) = self.repository.fetch_url(url) {
                        return Some((path.to_string(), content.to_string()));
                    }
                }
            }
        }
        // (3) Kaggle dataset API by basename.
        self.repository
            .find_file_by_name(&target)
            .map(|content| (path.to_string(), content.to_string()))
    }

    fn run_cell(
        &self,
        nb: &Notebook,
        cell_idx: usize,
        trial: &mut CellTrial<'_>,
    ) -> Result<(), ReplayError> {
        if let Some(spec) = &self.faults {
            if let Some(kind) = spec.fault_for(&nb.id, cell_idx, trial.round, trial.attempt) {
                trial.injected.push(kind.error_kind());
                match kind {
                    FaultKind::Panic => {
                        panic!("{INJECTED_PANIC_MARKER} operator panic in cell {cell_idx}")
                    }
                    FaultKind::Io => {
                        return Err(ReplayError::io_path(format!(
                            "injected://{}/cell{cell_idx}.csv",
                            nb.id
                        )))
                    }
                    FaultKind::Timeout => return Err(ReplayError::timeout()),
                    FaultKind::Package => {
                        return Err(ReplayError::missing_package("autosuggest_injected_pkg"))
                    }
                    FaultKind::Schema => {
                        return Err(ReplayError::schema("KeyError: 'injected_fault_column'"))
                    }
                }
            }
        }

        let cell = &nb.cells[cell_idx];
        for stmt in &cell.ast {
            match stmt {
                Stmt::Import { package } => {
                    if !trial.env.installed.contains(package) {
                        return Err(ReplayError::missing_package(package));
                    }
                }
                Stmt::Assign { var, expr } => {
                    let frame = self.eval(nb, cell_idx, expr, trial)?;
                    trial.env.vars.insert(var.clone(), frame);
                }
                Stmt::Inspect { expr } => {
                    self.eval(nb, cell_idx, expr, trial)?;
                }
            }
        }
        Ok(())
    }

    fn eval(
        &self,
        nb: &Notebook,
        cell_idx: usize,
        expr: &Expr,
        trial: &mut CellTrial<'_>,
    ) -> Result<DataFrame, ReplayError> {
        // Gather input frames first (shared error for unknown variables).
        let mut inputs: Vec<DataFrame> = Vec::new();
        for v in expr_inputs(expr) {
            match trial.env.vars.get(v) {
                Some(f) => inputs.push(f.clone()),
                None => {
                    return Err(ReplayError::schema(format!(
                        "NameError: name '{v}' is not defined"
                    )))
                }
            }
        }
        let in_rows: usize = inputs.iter().map(DataFrame::num_rows).sum();
        if in_rows > *trial.budget {
            return Err(ReplayError::timeout());
        }
        *trial.budget -= in_rows;

        let (op, params, output): (Option<OpKind>, Option<OpParams>, DataFrame) = match expr {
            Expr::ReadCsv { path } => {
                let content = trial
                    .env
                    .files
                    .get(path)
                    .ok_or_else(|| ReplayError::io_path(path.clone()))?;
                let df = io::read_csv_str(content).map_err(schema_err)?;
                (None, None, df)
            }
            Expr::JsonNormalize { path, record_path } => {
                let content = trial
                    .env
                    .files
                    .get(path)
                    .ok_or_else(|| ReplayError::io_path(path.clone()))?;
                let doc: serde_json::Value =
                    serde_json::from_str(content).map_err(schema_err)?;
                let rp: Option<Vec<&str>> = record_path
                    .as_ref()
                    .map(|p| p.iter().map(String::as_str).collect());
                let df = ops::json_normalize(&doc, rp.as_deref())
                    .map_err(schema_err)?;
                (
                    Some(OpKind::JsonNormalize),
                    Some(OpParams::JsonNormalize { record_path: record_path.clone() }),
                    df,
                )
            }
            Expr::Merge { left_on, right_on, how, .. } => {
                let lo: Vec<&str> = left_on.iter().map(String::as_str).collect();
                let ro: Vec<&str> = right_on.iter().map(String::as_str).collect();
                let df = ops::merge(&inputs[0], &inputs[1], &lo, &ro, *how)
                    .map_err(schema_err)?;
                (
                    Some(OpKind::Merge),
                    Some(OpParams::Merge {
                        left_on: left_on.clone(),
                        right_on: right_on.clone(),
                        how: *how,
                        suffixes: ("_x".into(), "_y".into()),
                        sort: false,
                        indicator: false,
                    }),
                    df,
                )
            }
            Expr::GroupBy { keys, aggs, .. } => {
                let k: Vec<&str> = keys.iter().map(String::as_str).collect();
                let a: Vec<(&str, Agg)> =
                    aggs.iter().map(|(c, g)| (c.as_str(), *g)).collect();
                let df = ops::groupby(&inputs[0], &k, &a).map_err(schema_err)?;
                (
                    Some(OpKind::GroupBy),
                    Some(OpParams::GroupBy {
                        keys: keys.clone(),
                        aggs: aggs.clone(),
                        sort: false,
                        dropna: true,
                    }),
                    df,
                )
            }
            Expr::Pivot { index, header, values, agg, .. } => {
                let i: Vec<&str> = index.iter().map(String::as_str).collect();
                let h: Vec<&str> = header.iter().map(String::as_str).collect();
                let df = ops::pivot_table(&inputs[0], &i, &h, values, *agg)
                    .map_err(schema_err)?;
                (
                    Some(OpKind::Pivot),
                    Some(OpParams::Pivot {
                        index: index.clone(),
                        header: header.clone(),
                        values: values.clone(),
                        agg: *agg,
                        fill_value: None,
                        margins: false,
                    }),
                    df,
                )
            }
            Expr::Melt { id_vars, value_vars, var_name, value_name, .. } => {
                let iv: Vec<&str> = id_vars.iter().map(String::as_str).collect();
                let vv: Vec<&str> = value_vars.iter().map(String::as_str).collect();
                let df = ops::melt(&inputs[0], &iv, &vv, var_name, value_name)
                    .map_err(schema_err)?;
                (
                    Some(OpKind::Melt),
                    Some(OpParams::Melt {
                        id_vars: id_vars.clone(),
                        value_vars: value_vars.clone(),
                        var_name: var_name.clone(),
                        value_name: value_name.clone(),
                    }),
                    df,
                )
            }
            Expr::Concat { frames } => {
                let refs: Vec<&DataFrame> = inputs.iter().collect();
                let df = ops::concat(&refs).map_err(schema_err)?;
                (
                    Some(OpKind::Concat),
                    Some(OpParams::Concat {
                        num_frames: frames.len(),
                        axis: 0,
                        ignore_index: true,
                    }),
                    df,
                )
            }
            Expr::DropNa { how_all, subset, .. } => {
                let how = if *how_all { DropHow::All } else { DropHow::Any };
                let sub: Option<Vec<&str>> =
                    subset.as_ref().map(|s| s.iter().map(String::as_str).collect());
                let df = ops::dropna(&inputs[0], how, sub.as_deref())
                    .map_err(schema_err)?;
                (
                    Some(OpKind::DropNa),
                    Some(OpParams::DropNa { how_all: *how_all, subset: subset.clone() }),
                    df,
                )
            }
            Expr::FillNa { value, .. } => {
                let v = match value {
                    FillValue::Int(i) => Value::Int(*i),
                    FillValue::Float(f) => Value::Float(*f),
                    FillValue::Str(s) => Value::Str(s.clone()),
                };
                let df =
                    ops::fillna_all(&inputs[0], &v).map_err(schema_err)?;
                (
                    Some(OpKind::FillNa),
                    Some(OpParams::FillNa { value: v.to_string() }),
                    df,
                )
            }
            Expr::Var(_) => (None, None, inputs[0].clone()),
        };

        if let (Some(op), Some(params)) = (op, params) {
            let input_hashes: Vec<u64> =
                inputs.iter().map(DataFrame::content_hash).collect();
            let output_hash = output.content_hash();
            trial.flow.push((op, input_hashes.clone(), output_hash));
            trial.log.push(OpInvocation {
                notebook_id: nb.id.clone(),
                dataset_group: nb.dataset_group.clone(),
                cell_index: cell_idx,
                op,
                inputs,
                params,
                input_hashes,
                output_hash,
                output_rows: output.num_rows(),
                output_cols: output.num_columns(),
            });
        }
        Ok(output)
    }
}

/// Environment state threaded through cell execution.
#[derive(Clone)]
struct Env {
    vars: HashMap<String, DataFrame>,
    installed: HashSet<String>,
    /// Resolvable file paths → contents (repo clone + recovered downloads).
    files: HashMap<String, String>,
}

/// One attempt at executing a cell: the snapshotted state it mutates plus
/// the (round, attempt) coordinates that salt fault-injection decisions.
struct CellTrial<'a> {
    env: &'a mut Env,
    log: &'a mut Vec<OpInvocation>,
    flow: &'a mut Vec<(OpKind, Vec<u64>, u64)>,
    budget: &'a mut usize,
    injected: &'a mut Vec<ReplayErrorKind>,
    round: usize,
    attempt: usize,
}

/// Dataframe-operator failures are schema/data problems by construction.
fn schema_err(e: impl std::fmt::Display) -> ReplayError {
    ReplayError::schema(e.to_string())
}

/// Marker carried by every injected panic payload (see `run_cell`).
const INJECTED_PANIC_MARKER: &str = "injected fault:";

/// Injected panics are caught and classified a few frames up, so the
/// default panic hook's stderr report is pure noise — hundreds of lines in
/// a fault-injection sweep. Chain a hook that drops reports for payloads
/// carrying the injection marker and forwards everything else untouched.
fn silence_injected_panic_reports() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Build the stand-in report for a notebook whose replay task itself
/// failed (e.g. a panic escaping even the engine's own isolation).
fn failed_report(nb: &Notebook, err: ReplayError) -> ReplayReport {
    ReplayReport {
        notebook_id: nb.id.clone(),
        dataset_group: nb.dataset_group.clone(),
        outcome: ReplayOutcome::from_error(err),
        cells_executed: 0,
        invocations: Vec::new(),
        flow: FlowGraph::new(),
        packages_installed: Vec::new(),
        files_recovered: Vec::new(),
        cell_retries: 0,
        injected_faults: Vec::new(),
    }
}

/// Parse `ModuleNotFoundError: No module named 'pkg'`.
pub fn parse_missing_package(err: &str) -> Option<String> {
    let marker = "No module named '";
    let start = err.find(marker)? + marker.len();
    let rest = &err[start..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

/// Parse `FileNotFoundError: No such file: 'path'`.
pub fn parse_missing_file(err: &str) -> Option<String> {
    let marker = "No such file: '";
    let start = err.find(marker)? + marker.len();
    let rest = &err[start..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

/// The basename of a path in either Unix or Windows notation (authors
/// hard-code both, §3.2).
pub fn basename(path: &str) -> String {
    path.rsplit(['/', '\\']).next().unwrap_or(path).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Stmt;
    use crate::notebook::{Cell, Notebook};

    fn csv_a() -> &'static str {
        "k,v\n1,10\n2,20\n3,30\n"
    }

    fn read_nb(path: &str, file_at: Option<&str>) -> Notebook {
        let mut nb = Notebook::new("t", "g");
        if let Some(p) = file_at {
            nb.add_file(p, csv_a());
        }
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "df".into(),
            expr: Expr::ReadCsv { path: path.into() },
        }]));
        nb
    }

    #[test]
    fn direct_path_replays() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let report = engine.replay(&read_nb("data.csv", Some("data.csv")));
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.cells_executed, 1);
    }

    #[test]
    fn absolute_path_resolved_by_basename_search() {
        // The §3.2 case: a hard-coded Windows path, file present in repo.
        let engine = ReplayEngine::new(DatasetRepository::new());
        let nb = read_nb("D:\\my_project\\data.csv", Some("input/data.csv"));
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.files_recovered.len(), 1);
    }

    #[test]
    fn url_in_markdown_recovers_file() {
        let mut repo = DatasetRepository::new();
        repo.add_url("https://data.example.com/data.csv", csv_a());
        let engine = ReplayEngine::new(repo);
        let mut nb = read_nb("data.csv", None);
        nb.cells[0].markdown =
            Some("Download from https://data.example.com/data.csv first".into());
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
    }

    #[test]
    fn kaggle_repository_recovers_file() {
        let mut repo = DatasetRepository::new();
        repo.add_dataset_file("someone/numbers", "data.csv", csv_a());
        let engine = ReplayEngine::new(repo);
        let report = engine.replay(&read_nb("data.csv", None));
        assert_eq!(report.outcome, ReplayOutcome::Success);
    }

    #[test]
    fn unresolvable_file_fails() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let report = engine.replay(&read_nb("secret.csv", None));
        assert_eq!(report.outcome, ReplayOutcome::MissingFile("secret.csv".into()));
        assert_eq!(report.cells_executed, 0);
    }

    #[test]
    fn installable_package_is_installed_and_cell_retried() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.add_file("data.csv", csv_a());
        nb.push_cell(Cell::code(vec![
            Stmt::Import { package: "seaborn".into() },
            Stmt::Assign {
                var: "df".into(),
                expr: Expr::ReadCsv { path: "data.csv".into() },
            },
        ]));
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.packages_installed, vec!["seaborn".to_string()]);
    }

    #[test]
    fn unknown_package_fails_notebook() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.push_cell(Cell::code(vec![Stmt::Import {
            package: "proprietary_internal_lib".into(),
        }]));
        let report = engine.replay(&nb);
        assert_eq!(
            report.outcome,
            ReplayOutcome::MissingPackage("proprietary_internal_lib".into())
        );
    }

    #[test]
    fn merge_invocation_is_instrumented_with_full_params() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.add_file("l.csv", "k,a\n1,x\n2,y\n3,z\n4,w\n5,q\n");
        nb.add_file("r.csv", "k,b\n1,p\n2,q\n3,r\n4,s\n5,t\n");
        nb.push_cell(Cell::code(vec![
            Stmt::Assign { var: "l".into(), expr: Expr::ReadCsv { path: "l.csv".into() } },
            Stmt::Assign { var: "r".into(), expr: Expr::ReadCsv { path: "r.csv".into() } },
            Stmt::Assign {
                var: "m".into(),
                expr: Expr::Merge {
                    left: "l".into(),
                    right: "r".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["k".into()],
                    how: JoinType::Left,
                },
            },
        ]));
        let report = engine.replay(&nb);
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert_eq!(report.invocations.len(), 1);
        let inv = &report.invocations[0];
        assert_eq!(inv.op, OpKind::Merge);
        assert_eq!(inv.inputs.len(), 2);
        assert_eq!(inv.inputs[0].num_rows(), 5);
        match &inv.params {
            OpParams::Merge { how, left_on, suffixes, .. } => {
                assert_eq!(*how, JoinType::Left);
                assert_eq!(left_on, &vec!["k".to_string()]);
                assert_eq!(suffixes.0, "_x"); // implicit default logged
            }
            other => panic!("wrong params {other:?}"),
        }
        assert_eq!(report.flow.op_sequence(), vec![OpKind::Merge]);
    }

    #[test]
    fn failed_cell_leaves_no_partial_invocations() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.add_file("l.csv", "k,a\n1,x\n");
        nb.push_cell(Cell::code(vec![
            Stmt::Assign { var: "l".into(), expr: Expr::ReadCsv { path: "l.csv".into() } },
            // groupby on a column that does not exist.
            Stmt::Assign {
                var: "g".into(),
                expr: Expr::GroupBy {
                    frame: "l".into(),
                    keys: vec!["missing".into()],
                    aggs: vec![("a".into(), Agg::Count)],
                },
            },
        ]));
        let report = engine.replay(&nb);
        assert!(matches!(report.outcome, ReplayOutcome::ExecutionError(_)));
        assert!(report.invocations.is_empty());
        assert_eq!(report.cells_executed, 0);
    }

    #[test]
    fn timeout_fires_on_budget_exhaustion() {
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_config(ReplayConfig {
                cell_row_budget: 2,
                max_retries: 2,
                ..ReplayConfig::default()
            });
        let mut nb = Notebook::new("t", "g");
        nb.add_file("l.csv", csv_a());
        nb.push_cell(Cell::code(vec![
            Stmt::Assign { var: "l".into(), expr: Expr::ReadCsv { path: "l.csv".into() } },
            Stmt::Assign {
                var: "d".into(),
                expr: Expr::DropNa { frame: "l".into(), how_all: false, subset: None },
            },
        ]));
        assert_eq!(engine.replay(&nb).outcome, ReplayOutcome::Timeout);
    }

    #[test]
    fn error_message_parsers() {
        assert_eq!(
            parse_missing_package("ModuleNotFoundError: No module named 'seaborn'"),
            Some("seaborn".into())
        );
        assert_eq!(parse_missing_package("SyntaxError"), None);
        assert_eq!(
            parse_missing_file("FileNotFoundError: No such file: 'a/b.csv'"),
            Some("a/b.csv".into())
        );
        assert_eq!(basename("D:\\x\\y.csv"), "y.csv");
        assert_eq!(basename("a/b/c.csv"), "c.csv");
        assert_eq!(basename("plain.csv"), "plain.csv");
    }

    #[test]
    fn undefined_variable_is_execution_error() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let mut nb = Notebook::new("t", "g");
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "x".into(),
            expr: Expr::DropNa { frame: "ghost".into(), how_all: false, subset: None },
        }]));
        let report = engine.replay(&nb);
        assert!(matches!(report.outcome, ReplayOutcome::ExecutionError(m) if m.contains("NameError")));
    }

    fn spec(s: &str) -> FaultSpec {
        FaultSpec::parse(s).expect("fault spec")
    }

    #[test]
    fn transient_injected_panic_is_retried_and_recovers() {
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_faults(Some(spec("panic=1.0,seed=7,transient=1.0")));
        let report = engine.replay(&read_nb("data.csv", Some("data.csv")));
        assert_eq!(report.outcome, ReplayOutcome::Success);
        assert!(report.cell_retries >= 1);
        assert_eq!(report.injected_faults, vec![ReplayErrorKind::OperatorPanic]);
    }

    #[test]
    fn persistent_injected_panic_exhausts_retries_without_escaping() {
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_faults(Some(spec("panic=1.0,seed=7,transient=0.0")));
        let report = engine.replay(&read_nb("data.csv", Some("data.csv")));
        assert!(
            matches!(&report.outcome, ReplayOutcome::OperatorPanic(m) if m.contains("retries exhausted")),
            "got {:?}",
            report.outcome
        );
        assert_eq!(report.cells_executed, 0);
    }

    #[test]
    fn injected_io_fault_becomes_missing_file() {
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_faults(Some(spec("io=1.0,seed=7,transient=0.0")));
        let report = engine.replay(&read_nb("data.csv", Some("data.csv")));
        assert!(
            matches!(&report.outcome, ReplayOutcome::MissingFile(p) if p.starts_with("injected://")),
            "got {:?}",
            report.outcome
        );
    }

    #[test]
    fn replay_corpus_quarantines_persistent_failures() {
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_faults(Some(spec("panic=1.0,seed=7,transient=0.0")));
        let notebooks = vec![read_nb("data.csv", Some("data.csv"))];
        let (reports, stats) = engine.replay_corpus(&notebooks);
        assert_eq!(reports.len(), 1);
        assert!(matches!(reports[0].outcome, ReplayOutcome::OperatorPanic(_)));
        assert_eq!(stats.notebooks, 1);
        assert_eq!(stats.failed_first_pass, 1);
        assert_eq!(stats.retried_notebooks, 1);
        assert_eq!(stats.recovered_notebooks, 0);
        assert_eq!(stats.quarantined_notebooks, 1);
        let panic_ctr = stats.kind(ReplayErrorKind::OperatorPanic);
        assert_eq!(panic_ctr.failures, 1);
        assert_eq!(panic_ctr.retries, 2); // max_notebook_rounds(3) - first pass
        assert_eq!(panic_ctr.quarantined, 1);
        assert!(panic_ctr.injected > 0);
    }

    #[test]
    fn replay_corpus_recovers_transient_timeout_in_quarantine_round() {
        // A transient timeout fails the whole notebook on round 0 (timeouts
        // are not retried at cell level) and clears on the quarantine round.
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_faults(Some(spec("timeout=1.0,seed=7,transient=1.0")));
        let notebooks = vec![read_nb("data.csv", Some("data.csv"))];
        let (reports, stats) = engine.replay_corpus(&notebooks);
        assert_eq!(reports[0].outcome, ReplayOutcome::Success);
        assert_eq!(stats.failed_first_pass, 1);
        assert_eq!(stats.recovered_notebooks, 1);
        assert_eq!(stats.quarantined_notebooks, 0);
        let t = stats.kind(ReplayErrorKind::Timeout);
        assert_eq!(t.retries, 1);
        assert_eq!(t.recovered, 1);
        assert_eq!(t.quarantined, 0);
    }

    #[test]
    fn every_fault_kind_is_injectable_and_surfaces_its_error_kind() {
        // Each FaultKind, injected persistently at rate 1.0, must fail the
        // notebook with exactly the ReplayErrorKind it maps to — no kind is
        // uninjectable and none masquerades as another.
        for kind in crate::faults::FaultKind::ALL {
            let engine = ReplayEngine::new(DatasetRepository::new()).with_faults(Some(spec(
                &format!("{}=1.0,seed=7,transient=0.0", kind.as_str()),
            )));
            let report = engine.replay(&read_nb("data.csv", Some("data.csv")));
            assert_eq!(
                report.outcome.failure_kind(),
                Some(kind.error_kind()),
                "injected {:?}, outcome {:?}",
                kind,
                report.outcome
            );
            assert!(
                report.injected_faults.contains(&kind.error_kind()),
                "{kind:?} was not recorded as injected"
            );
            assert_eq!(report.cells_executed, 0);
        }
    }

    #[test]
    fn non_retryable_faults_skip_retry_rounds_and_quarantine() {
        // Schema and package failures are deterministic: replay_corpus must
        // fail them on the first pass without burning retry rounds, and the
        // quarantine counters must stay untouched.
        for kind in [crate::faults::FaultKind::Package, crate::faults::FaultKind::Schema] {
            let engine = ReplayEngine::new(DatasetRepository::new()).with_faults(Some(spec(
                &format!("{}=1.0,seed=7,transient=0.0", kind.as_str()),
            )));
            let notebooks = vec![read_nb("data.csv", Some("data.csv"))];
            let (reports, stats) = engine.replay_corpus(&notebooks);
            assert_eq!(reports[0].outcome.failure_kind(), Some(kind.error_kind()));
            assert_eq!(stats.failed_first_pass, 1);
            assert_eq!(stats.retried_notebooks, 0, "{kind:?} must not be retried");
            assert_eq!(stats.recovered_notebooks, 0);
            assert_eq!(stats.quarantined_notebooks, 0);
            let c = stats.kind(kind.error_kind());
            assert_eq!(c.failures, 1);
            assert_eq!(c.retries, 0);
            assert_eq!(c.recovered, 0);
            assert_eq!(c.quarantined, 0);
        }
    }

    #[test]
    fn obs_fault_counters_mirror_robustness_stats() {
        // record_obs folds RobustnessStats into the metrics registry at the
        // end of replay_corpus; every counter must equal the stats field it
        // mirrors, and zero-valued fields must leave no counter behind.
        let engine = ReplayEngine::new(DatasetRepository::new())
            .with_faults(Some(spec("panic=1.0,seed=7,transient=0.0")));
        let notebooks = vec![
            read_nb("data.csv", Some("data.csv")),
            read_nb("other.csv", Some("other.csv")),
        ];
        let ((_, stats), snap) =
            obs::with_local_registry(|| engine.replay_corpus(&notebooks));
        let ctr = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(ctr("replay.notebooks"), stats.notebooks as u64);
        assert_eq!(ctr("replay.failed_first_pass"), stats.failed_first_pass as u64);
        assert_eq!(ctr("replay.retried_notebooks"), stats.retried_notebooks as u64);
        assert_eq!(ctr("replay.recovered_notebooks"), stats.recovered_notebooks as u64);
        assert_eq!(
            ctr("replay.quarantined_notebooks"),
            stats.quarantined_notebooks as u64
        );
        assert_eq!(ctr("replay.cell_retries"), stats.cell_retries as u64);
        assert!(stats.total_injected() > 0, "sanity: faults actually fired");
        for kind in ReplayErrorKind::ALL {
            let c = stats.kind(kind);
            let fields = [
                ("injected", c.injected),
                ("failures", c.failures),
                ("retries", c.retries),
                ("recovered", c.recovered),
                ("quarantined", c.quarantined),
            ];
            for (field, v) in fields {
                let name = format!("replay.faults.{}.{field}", kind.as_str());
                assert_eq!(ctr(&name), v as u64, "counter {name} diverged");
                if v == 0 {
                    assert!(
                        !snap.counters.contains_key(&name),
                        "zero-valued {name} should not be emitted"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_corpus_without_faults_reports_clean_stats() {
        let engine = ReplayEngine::new(DatasetRepository::new());
        let notebooks = vec![
            read_nb("data.csv", Some("data.csv")),
            read_nb("other.csv", Some("other.csv")),
        ];
        let (reports, stats) = engine.replay_corpus(&notebooks);
        assert!(reports.iter().all(|r| r.outcome == ReplayOutcome::Success));
        assert_eq!(stats.total_injected(), 0);
        assert_eq!(stats.failed_first_pass, 0);
        assert_eq!(stats.quarantined_notebooks, 0);
        assert_eq!(stats.fault_spec, None);
    }
}
