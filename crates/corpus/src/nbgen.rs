//! Synthetic notebook generation.
//!
//! Produces a corpus whose *replay logs* have the statistical structure the
//! paper harvests from GitHub (DESIGN.md §1): per-operator notebook
//! archetypes with planted ground truth, plus longer mixed pipelines whose
//! operator transitions carry the sequential correlations next-operator
//! prediction exploits (§5). Author misbehaviour is planted at realistic
//! rates — hard-coded absolute paths, data only available via URLs or the
//! Kaggle API, missing packages, duplicated invocations, and unrecoverable
//! failures that make replay success rates match Table 2's shape.

use crate::datasets::DatasetRepository;
use crate::lang::{Expr, FillValue, Stmt};
use crate::notebook::{Cell, Notebook};
use crate::tablegen::{GenTable, JoinCase, TableGenConfig, TableGenerator};
use autosuggest_dataframe::io::write_csv_string;
use autosuggest_dataframe::ops::Agg;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Corpus-scale configuration.
///
/// Defaults reproduce the paper's post-filtering dataset at roughly 1:40
/// scale (Table 2), which is ample to train and evaluate every predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    pub seed: u64,
    pub join_notebooks: usize,
    pub groupby_notebooks: usize,
    pub pivot_notebooks: usize,
    pub unpivot_notebooks: usize,
    pub json_notebooks: usize,
    /// Mixed multi-operator pipelines for next-op prediction.
    pub flow_notebooks: usize,
    /// Plant recoverable quirks and unrecoverable failures.
    pub plant_failures: bool,
    pub tables: TableGenConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            join_notebooks: 420,
            groupby_notebooks: 300,
            pivot_notebooks: 260,
            unpivot_notebooks: 110,
            json_notebooks: 60,
            flow_notebooks: 420,
            plant_failures: true,
            tables: TableGenConfig::default(),
        }
    }
}

impl CorpusConfig {
    /// A corpus of (roughly) `total` notebooks at the default archetype mix,
    /// used by `repro --corpus-scale N`. Per-archetype counts scale
    /// proportionally from the default configuration; the rounding remainder
    /// goes to join notebooks. Join twins (~20% of join jobs) generate on
    /// top, so the realised notebook count slightly exceeds `total`.
    pub fn scaled_to(seed: u64, total: usize) -> Self {
        let base = CorpusConfig::default();
        let weights = [
            base.join_notebooks,
            base.groupby_notebooks,
            base.pivot_notebooks,
            base.unpivot_notebooks,
            base.json_notebooks,
            base.flow_notebooks,
        ];
        let denom: usize = weights.iter().sum();
        let scaled: Vec<usize> = weights.iter().map(|w| total * w / denom).collect();
        let assigned: usize = scaled.iter().sum();
        CorpusConfig {
            seed,
            join_notebooks: scaled[0] + (total - assigned),
            groupby_notebooks: scaled[1],
            pivot_notebooks: scaled[2],
            unpivot_notebooks: scaled[3],
            json_notebooks: scaled[4],
            flow_notebooks: scaled[5],
            plant_failures: true,
            tables: TableGenConfig::default(),
        }
    }

    /// A small corpus for unit/integration tests (fast in debug builds).
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            seed,
            join_notebooks: 40,
            groupby_notebooks: 30,
            pivot_notebooks: 30,
            unpivot_notebooks: 20,
            json_notebooks: 8,
            flow_notebooks: 40,
            plant_failures: true,
            tables: TableGenConfig::default(),
        }
    }
}

/// The generated corpus: notebooks plus the simulated external world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedCorpus {
    pub notebooks: Vec<Notebook>,
    pub repository: DatasetRepository,
}

/// Per-archetype unrecoverable-failure probability, tuned so replay success
/// rates land near Table 2's (#replayed / #sampled) ratios.
fn unrecoverable_rate(archetype: Archetype) -> f64 {
    match archetype {
        Archetype::Join => 0.55,
        Archetype::GroupBy => 0.55,
        Archetype::Pivot => 0.5,
        Archetype::Unpivot => 0.45,
        Archetype::Json => 0.4,
        Archetype::Flow => 0.3,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Archetype {
    Join,
    GroupBy,
    Pivot,
    Unpivot,
    Json,
    Flow,
}

impl Archetype {
    /// Stable stream tag mixed into per-notebook seeds.
    fn stream_tag(self) -> u64 {
        match self {
            Archetype::Join => 1,
            Archetype::GroupBy => 2,
            Archetype::Pivot => 3,
            Archetype::Unpivot => 4,
            Archetype::Json => 5,
            Archetype::Flow => 6,
        }
    }
}

/// SplitMix64-style seed derivation: every notebook gets an RNG stream that
/// is a pure function of `(corpus seed, archetype, ordinal, lane)` — no
/// shared sequential RNG, so notebooks can be generated in any order (or in
/// parallel) without changing their content.
fn derive_seed(seed: u64, tag: u64, ordinal: u64, lane: u64) -> u64 {
    let mut z = seed
        ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ ordinal.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ lane.wrapping_mul(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One generation job: a per-archetype ordinal. A join job may emit twin
/// notebooks (they share a dataset group and input tables).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) archetype: Archetype,
    pub(crate) idx: usize,
}

/// The canonical job list for a corpus configuration, in the same archetype
/// order `generate()` uses. Every notebook is a pure function of its job, so
/// any partition of this list into contiguous shards, generated
/// independently and concatenated, reproduces the full corpus exactly.
pub(crate) fn corpus_jobs(cfg: &CorpusConfig) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut push = |archetype: Archetype, count: usize| {
        jobs.extend((0..count).map(|idx| Job { archetype, idx }));
    };
    push(Archetype::Join, cfg.join_notebooks);
    push(Archetype::GroupBy, cfg.groupby_notebooks);
    push(Archetype::Pivot, cfg.pivot_notebooks);
    push(Archetype::Unpivot, cfg.unpivot_notebooks);
    push(Archetype::Json, cfg.json_notebooks);
    push(Archetype::Flow, cfg.flow_notebooks);
    jobs
}

/// Generate the notebooks for a slice of the canonical job list. Jobs are
/// independent (each carries its own derived RNG streams and repository
/// delta), so they fan out across the deterministic thread pool; results are
/// reassembled in job order and are bit-identical at any
/// `AUTOSUGGEST_THREADS`. Because every dataset basename/URL/slug embeds the
/// notebook's archetype and serial, a shard's repository delta contains
/// exactly the files its notebooks reference — replaying a shard against its
/// own delta behaves identically to replaying against the merged full-corpus
/// repository.
pub(crate) fn generate_jobs(cfg: &CorpusConfig, jobs: &[Job]) -> GeneratedCorpus {
    let pool = autosuggest_parallel::Pool::global().with_min_items(8);
    let produced = pool.par_map(jobs, |job| CorpusGenerator::run_job(cfg, *job));

    let mut notebooks = Vec::new();
    let mut repository = DatasetRepository::new();
    for (nbs, delta) in produced {
        notebooks.extend(nbs);
        repository.merge(delta);
    }
    autosuggest_obs::counter_add("corpus.notebooks_generated", notebooks.len() as u64);
    GeneratedCorpus { notebooks, repository }
}

/// The corpus generator. `CorpusGenerator::new(cfg).generate()` builds the
/// full corpus; internally each notebook is produced by a short-lived
/// per-notebook generator whose RNG, table generator, and serial are all
/// derived from the notebook's identity (archetype + ordinal), never from a
/// shared sequential stream.
pub struct CorpusGenerator {
    rng: StdRng,
    tables: TableGenerator,
    cfg: CorpusConfig,
    repo: DatasetRepository,
    serial: usize,
}

impl CorpusGenerator {
    pub fn new(cfg: CorpusConfig) -> Self {
        Self::for_notebook(&cfg, Archetype::Join, 0)
    }

    /// A generator scoped to one notebook: `serial` (used in notebook ids,
    /// file basenames, URLs, and dataset slugs) is the per-archetype
    /// ordinal, and both RNG streams are derived from it.
    fn for_notebook(cfg: &CorpusConfig, archetype: Archetype, ordinal: usize) -> Self {
        let tag = archetype.stream_tag();
        CorpusGenerator {
            rng: StdRng::seed_from_u64(derive_seed(cfg.seed, tag, ordinal as u64, 1)),
            tables: TableGenerator::new(
                derive_seed(cfg.seed, tag, ordinal as u64, 2),
                cfg.tables.clone(),
            ),
            cfg: cfg.clone(),
            repo: DatasetRepository::new(),
            serial: ordinal,
        }
    }

    /// Generate the full corpus. Jobs are independent (each carries its own
    /// derived RNG streams and repository delta), so they fan out across
    /// the deterministic thread pool; results are reassembled in job order
    /// and are bit-identical at any `AUTOSUGGEST_THREADS`.
    pub fn generate(self) -> GeneratedCorpus {
        let jobs = corpus_jobs(&self.cfg);
        generate_jobs(&self.cfg, &jobs)
    }


    pub(crate) fn run_job(cfg: &CorpusConfig, job: Job) -> (Vec<Notebook>, DatasetRepository) {
        let mut generator = Self::for_notebook(cfg, job.archetype, job.idx);
        let notebooks = match job.archetype {
            Archetype::Join => generator.join_notebooks(job.idx),
            Archetype::GroupBy => vec![generator.groupby_notebook(job.idx)],
            Archetype::Pivot => vec![generator.pivot_notebook(job.idx)],
            Archetype::Unpivot => vec![generator.unpivot_notebook(job.idx)],
            Archetype::Json => vec![generator.json_notebook(job.idx)],
            Archetype::Flow => vec![generator.flow_notebook(job.idx)],
        };
        (notebooks, generator.repo)
    }

    fn next_id(&self, kind: &str) -> String {
        format!("nb-{kind}-{:05}", self.serial)
    }

    /// The first cell: imports, possibly planting package failures.
    fn import_cell(&mut self, archetype: Archetype, doomed: &mut bool) -> Cell {
        let mut stmts = vec![Stmt::Import { package: "pandas".into() }];
        if self.cfg.plant_failures {
            if self.rng.random_bool(0.4) {
                if let Some(extra) =
                    ["matplotlib", "seaborn", "sklearn", "scipy"].choose(&mut self.rng)
                {
                    stmts.push(Stmt::Import { package: (*extra).to_string() });
                }
            }
            if !*doomed && self.rng.random_bool(unrecoverable_rate(archetype) * 0.5) {
                // Half of the unrecoverable failures are unknown packages...
                stmts.push(Stmt::Import {
                    package: format!("private_utils_{}", self.serial),
                });
                *doomed = true;
            }
        }
        Cell::code(stmts)
    }

    /// Attach a table to the notebook and return the path `read_csv` should
    /// use, planting path quirks (§3.2) at realistic rates.
    fn plant_file(
        &mut self,
        nb: &mut Notebook,
        name: &str,
        content: String,
        doomed_file: bool,
    ) -> (String, Option<String>) {
        if doomed_file {
            // ...the other half reference proprietary data hosted nowhere.
            return (format!("/home/author/private/{name}"), None);
        }
        if !self.cfg.plant_failures {
            nb.add_file(name.to_string(), content);
            return (name.to_string(), None);
        }
        let roll: f64 = self.rng.random();
        if roll < 0.45 {
            // Hard-coded absolute path; file lives elsewhere in the repo.
            nb.add_file(format!("data/{name}"), content);
            let style = if self.rng.random_bool(0.5) {
                format!("D:\\my_project\\{name}")
            } else {
                format!("/Users/author/work/{name}")
            };
            (style, None)
        } else if roll < 0.55 {
            // Only available at a URL mentioned in markdown.
            let url = format!("https://data.example.com/{}/{name}", self.serial);
            self.repo.add_url(url.clone(), content);
            (
                name.to_string(),
                Some(format!("Dataset downloaded from {url}")),
            )
        } else if roll < 0.65 {
            // Only available as a Kaggle-style dataset.
            let slug = format!("user{}/{}", self.serial % 97, name.trim_end_matches(".csv"));
            self.repo.add_dataset_file(slug.clone(), name.to_string(), content);
            (
                name.to_string(),
                Some(format!("See kaggle datasets download -d {slug}")),
            )
        } else {
            nb.add_file(name.to_string(), content);
            (name.to_string(), None)
        }
    }

    /// One join case produces 1–2 notebooks (twins share the dataset group,
    /// exercising the leakage-safe splitter and cross-notebook dedup). The
    /// twin runs on its own derived streams at an offset ordinal so its id,
    /// file basenames, and quirks stay distinct from the primary's.
    fn join_notebooks(&mut self, idx: usize) -> Vec<Notebook> {
        const TWIN_OFFSET: usize = 50_000;
        let case = self.tables.join_pair();
        let group = format!("join-ds-{idx}");
        let mut out = vec![self.join_notebook_for(&case, &group)];
        if self.rng.random_bool(0.2) {
            let mut twin = Self::for_notebook(&self.cfg, Archetype::Join, idx + TWIN_OFFSET);
            out.push(twin.join_notebook_for(&case, &group));
            self.repo.merge(twin.repo);
        }
        out
    }

    fn join_notebook_for(&mut self, case: &JoinCase, group: &str) -> Vec1 {
        let id = self.next_id("join");
        let mut nb = Notebook::new(id, group);
        let mut doomed = false;
        nb.push_cell(self.import_cell(Archetype::Join, &mut doomed));

        let doom_file = self.cfg.plant_failures
            && !doomed
            && self.rng.random_bool(unrecoverable_rate(Archetype::Join) * 0.5);
        // Basenames are unique per notebook: the Kaggle-style fallback
        // resolves by basename, and identically-named files from unrelated
        // notebooks would otherwise shadow each other.
        let lname = format!("sales_{}.csv", self.serial);
        let rname = format!("lookup_{}.csv", self.serial);
        let (lpath, lmd) =
            self.plant_file(&mut nb, &lname, write_csv_string(&case.left.df), false);
        let (rpath, rmd) =
            self.plant_file(&mut nb, &rname, write_csv_string(&case.right.df), doom_file);
        let mut c1 = Cell::code(vec![Stmt::Assign {
            var: "sales".into(),
            expr: Expr::ReadCsv { path: lpath },
        }]);
        c1.markdown = lmd;
        nb.push_cell(c1);
        let mut c2 = Cell::code(vec![Stmt::Assign {
            var: "lookup".into(),
            expr: Expr::ReadCsv { path: rpath },
        }]);
        c2.markdown = rmd;
        nb.push_cell(c2);

        let merge = Expr::Merge {
            left: "sales".into(),
            right: "lookup".into(),
            left_on: case.left_on.clone(),
            right_on: case.right_on.clone(),
            how: case.how,
        };
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "merged".into(),
            expr: merge.clone(),
        }]));
        // Loop-style repetition: several near-identical merges (Table 2's
        // #operator-replayed ≫ #notebooks-replayed; dedup collapses them).
        if self.rng.random_bool(0.6) {
            let reps = self.rng.random_range(1..=4);
            let mut stmts = Vec::new();
            for r in 0..reps {
                stmts.push(Stmt::Assign { var: format!("merged_{r}"), expr: merge.clone() });
            }
            nb.push_cell(Cell::code(stmts));
        }
        // Occasionally the merged frame is stacked with itself (appends of
        // multiple periods are a common concat pattern).
        if self.rng.random_bool(0.3) {
            nb.push_cell(Cell::code(vec![Stmt::Assign {
                var: "stacked".into(),
                expr: Expr::Concat { frames: vec!["merged".into(), "merged".into()] },
            }]));
        }
        // Frequently a groupby follows the join (sequence signal).
        if self.rng.random_bool(0.5) && !case.left.meta.measure_cols.is_empty() {
            let mut key = case.left.meta.dim_cols
                [self.rng.random_range(0..case.left.meta.dim_cols.len())]
            .clone();
            // Columns present on both sides get suffixed by the merge.
            let right_names = case.right.df.column_names();
            if right_names.contains(&key.as_str()) && !case.left_on.contains(&key) {
                key.push_str("_x");
            }
            let measure = case.left.meta.measure_cols[0].clone();
            nb.push_cell(Cell::code(vec![Stmt::Assign {
                var: "summary".into(),
                expr: Expr::GroupBy {
                    frame: "merged".into(),
                    keys: vec![key],
                    aggs: vec![(measure, Agg::Sum)],
                },
            }]));
        }
        nb
    }

    fn groupby_notebook(&mut self, idx: usize) -> Notebook {
        let id = self.next_id("groupby");
        let mut nb = Notebook::new(id, format!("groupby-ds-{idx}"));
        let mut doomed = false;
        nb.push_cell(self.import_cell(Archetype::GroupBy, &mut doomed));

        let n = self.rng.random_range(8..25);
        let entities = self.tables.entities(n);
        let table = self.tables.fact_table(&entities);
        let doom_file = self.cfg.plant_failures
            && !doomed
            && self
                .rng
                .random_bool(unrecoverable_rate(Archetype::GroupBy) * 0.5);
        let fname = format!("records_{}.csv", self.serial);
        let (path, md) =
            self.plant_file(&mut nb, &fname, write_csv_string(&table.df), doom_file);
        let mut c = Cell::code(vec![Stmt::Assign {
            var: "df".into(),
            expr: Expr::ReadCsv { path },
        }]);
        c.markdown = md;
        nb.push_cell(c);

        let mut frame = "df".to_string();
        // Authors often clean nulls before aggregating.
        let has_nulls = table.df.columns().iter().any(|c| c.null_count() > 0);
        if has_nulls && self.rng.random_bool(0.75) {
            let (var, expr) = if self.rng.random_bool(0.5) {
                ("clean", Expr::DropNa { frame: frame.clone(), how_all: false, subset: None })
            } else {
                ("clean", Expr::FillNa { frame: frame.clone(), value: FillValue::Float(0.0) })
            };
            nb.push_cell(Cell::code(vec![Stmt::Assign { var: var.into(), expr }]));
            frame = "clean".into();
        }

        let (keys, aggs) = self.author_groupby_choice(&table);
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "grouped".into(),
            expr: Expr::GroupBy { frame, keys, aggs },
        }]));
        nb
    }

    /// How an author parameterises GroupBy on a fact table: 1–2 dimensions
    /// (non-key dims preferred; keys are too fine-grained to group by alone
    /// unless paired with time), and 1–2 measures aggregated.
    fn author_groupby_choice(&mut self, t: &GenTable) -> (Vec<String>, Vec<(String, Agg)>) {
        let mut keys: Vec<String> = Vec::new();
        let candidate_dims: Vec<&String> = t.meta.dim_cols.iter().collect();
        let n_keys = self.rng.random_range(1..=2.min(candidate_dims.len()));
        while keys.len() < n_keys {
            let pick = candidate_dims[self.rng.random_range(0..candidate_dims.len())];
            if !keys.contains(pick) {
                keys.push(pick.clone());
            }
        }
        let mut aggs: Vec<(String, Agg)> = Vec::new();
        let n_aggs = self.rng.random_range(1..=t.meta.measure_cols.len().min(2));
        for m in t.meta.measure_cols.iter().take(n_aggs) {
            let agg = if self.rng.random_bool(0.6) { Agg::Sum } else { Agg::Mean };
            aggs.push((m.clone(), agg));
        }
        // Sometimes the aggregated column is a *string* dimension counted
        // per group ("how many companies per sector") — the case that
        // breaks type-based dimension/measure rules.
        if self.rng.random_bool(0.35) {
            if let Some(counted) = t
                .meta
                .dim_cols
                .iter()
                .find(|d| !keys.contains(d) && !aggs.iter().any(|(a, _)| a == *d))
            {
                aggs.push((counted.clone(), Agg::Count));
            }
        }
        (keys, aggs)
    }

    fn pivot_notebook(&mut self, idx: usize) -> Notebook {
        let id = self.next_id("pivot");
        let mut nb = Notebook::new(id, format!("pivot-ds-{idx}"));
        let mut doomed = false;
        nb.push_cell(self.import_cell(Archetype::Pivot, &mut doomed));

        let n = self.rng.random_range(10..30);
        let entities = self.tables.entities(n);
        let table = self.tables.fact_table(&entities);
        let doom_file = self.cfg.plant_failures
            && !doomed
            && self.rng.random_bool(unrecoverable_rate(Archetype::Pivot) * 0.5);
        let fname = format!("filings_{}.csv", self.serial);
        let (path, md) =
            self.plant_file(&mut nb, &fname, write_csv_string(&table.df), doom_file);
        let mut c = Cell::code(vec![Stmt::Assign {
            var: "df".into(),
            expr: Expr::ReadCsv { path },
        }]);
        c.markdown = md;
        nb.push_cell(c);

        // Author's split: FD-linked entity attributes on the index, one of
        // the *independent* dimensions (year, quarter, or a per-row
        // categorical like region) on the header (Fig. 7). Headers are not
        // always numeric/temporal — that variety is what defeats static
        // type rules (Table 8). A small fraction of authors deviates — the
        // irreducible noise real data has.
        let entity_dims: Vec<String> = table.meta.dim_cols[..3.min(table.meta.dim_cols.len())]
            .to_vec();
        let independent: Vec<String> = table
            .meta
            .dim_cols
            .iter()
            .filter(|d| !entity_dims.contains(*d))
            .cloned()
            .collect();
        let (mut index, mut header) = if !independent.is_empty() {
            // Authors usually pick the smallest-cardinality independent
            // dimension as the header (narrow pivots read best); sometimes
            // they pick another one.
            let chosen = if self.rng.random_bool(0.75) {
                independent
                    .iter()
                    .min_by_key(|d| {
                        table.df.column(d).map(|c| c.distinct_count()).unwrap_or(usize::MAX)
                    })
                    .unwrap_or(&independent[0])
                    .clone()
            } else {
                independent[self.rng.random_range(0..independent.len())].clone()
            };
            let h = vec![chosen];
            let mut i = entity_dims.clone();
            i.extend(independent.iter().filter(|t| !h.contains(t)).cloned());
            (i, h)
        } else {
            match entity_dims.split_last() {
                Some((last, rest)) => (rest.to_vec(), vec![last.clone()]),
                None => (Vec::new(), Vec::new()),
            }
        };
        if index.is_empty() {
            std::mem::swap(&mut index, &mut header);
        }
        if self.rng.random_bool(0.05) && index.len() >= 2 {
            // Contrarian author: swap one index column onto the header.
            let moved = index.remove(self.rng.random_range(0..index.len()));
            header.push(moved);
        }
        let values = table.meta.measure_cols[0].clone();
        let agg = if self.rng.random_bool(0.7) { Agg::Sum } else { Agg::Mean };
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "pivoted".into(),
            expr: Expr::Pivot { frame: "df".into(), index, header, values, agg },
        }]));
        nb
    }

    fn unpivot_notebook(&mut self, idx: usize) -> Notebook {
        let id = self.next_id("unpivot");
        let mut nb = Notebook::new(id, format!("unpivot-ds-{idx}"));
        let mut doomed = false;
        nb.push_cell(self.import_cell(Archetype::Unpivot, &mut doomed));

        // Wide tables: mostly 5–25 collapsible columns at our scale (the
        // paper reports 183-column monsters; the block/ids ratio is what
        // matters for CMUT).
        let wide = self.rng.random_range(4..26);
        let table = self.tables.wide_pivot_table(wide);
        let doom_file = self.cfg.plant_failures
            && !doomed
            && self
                .rng
                .random_bool(unrecoverable_rate(Archetype::Unpivot) * 0.5);
        let fname = format!("wide_{}.csv", self.serial);
        let (path, md) =
            self.plant_file(&mut nb, &fname, write_csv_string(&table.df), doom_file);
        let mut c = Cell::code(vec![Stmt::Assign {
            var: "wide".into(),
            expr: Expr::ReadCsv { path },
        }]);
        c.markdown = md;
        nb.push_cell(c);

        let (var_name, value_name) = match table.meta.collapse_cols[0].parse::<i64>() {
            Ok(_) => ("year".to_string(), "value".to_string()),
            Err(_) => ("period".to_string(), "amount".to_string()),
        };
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "long".into(),
            expr: Expr::Melt {
                frame: "wide".into(),
                id_vars: table.meta.dim_cols.clone(),
                value_vars: table.meta.collapse_cols.clone(),
                var_name,
                value_name: value_name.clone(),
            },
        }]));
        // Often an aggregation follows the reshape.
        if self.rng.random_bool(0.4) {
            nb.push_cell(Cell::code(vec![Stmt::Assign {
                var: "agg".into(),
                expr: Expr::GroupBy {
                    frame: "long".into(),
                    keys: vec![table.meta.dim_cols[0].clone()],
                    aggs: vec![(value_name, Agg::Mean)],
                },
            }]));
        }
        nb
    }

    fn json_notebook(&mut self, idx: usize) -> Notebook {
        let id = self.next_id("json");
        let mut nb = Notebook::new(id, format!("json-ds-{idx}"));
        let mut doomed = false;
        nb.push_cell(self.import_cell(Archetype::Json, &mut doomed));

        let n = self.rng.random_range(5..20);
        let entities = self.tables.entities(n);
        let records: Vec<serde_json::Value> = entities
            .iter()
            .enumerate()
            .map(|(i, e)| {
                serde_json::json!({
                    "id": e.id,
                    "profile": {"name": e.name, "sector": e.category},
                    "metrics": {"score": (i as f64) * 1.5 + 3.0},
                })
            })
            .collect();
        let content =
            serde_json::to_string(&records).unwrap_or_else(|_| "[]".to_string());
        let path = format!("api_dump_{idx}.json");
        let doom_file =
            self.cfg.plant_failures && !doomed && self.rng.random_bool(0.4);
        if !doom_file {
            nb.add_file(path.clone(), content);
        }
        let read_path =
            if doom_file { format!("/tmp/private/{path}") } else { path };
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "df".into(),
            expr: Expr::JsonNormalize { path: read_path, record_path: None },
        }]));
        nb
    }

    /// A mixed pipeline notebook: the next-operator training signal.
    fn flow_notebook(&mut self, idx: usize) -> Notebook {
        let id = self.next_id("flow");
        let mut nb = Notebook::new(id, format!("flow-ds-{idx}"));
        let mut doomed = false;
        nb.push_cell(self.import_cell(Archetype::Flow, &mut doomed));

        // 20% of pipelines start on a wide pivot-shaped table; the rest on a
        // fact table (with an optional dimension table for joins).
        if self.rng.random_bool(0.2) {
            self.flow_from_wide(&mut nb, doomed);
        } else {
            self.flow_from_fact(&mut nb, doomed);
        }
        nb
    }

    fn flow_from_wide(&mut self, nb: &mut Notebook, doomed: bool) {
        let wide = self.rng.random_range(4..15);
        let table = self.tables.wide_pivot_table(wide);
        let doom_file = doomed && self.rng.random_bool(0.5);
        let fname = format!("matrix_{}.csv", self.serial);
        let (path, md) =
            self.plant_file(nb, &fname, write_csv_string(&table.df), doom_file);
        let mut c = Cell::code(vec![Stmt::Assign {
            var: "wide".into(),
            expr: Expr::ReadCsv { path },
        }]);
        c.markdown = md;
        nb.push_cell(c);
        // Wide tables overwhelmingly get melted first (the table-state
        // signal: input "looks like" a pivot table → Unpivot next, §5).
        let has_nulls = table.df.columns().iter().any(|c| c.null_count() > 0);
        let mut frame = "wide".to_string();
        if has_nulls && self.rng.random_bool(0.35) {
            nb.push_cell(Cell::code(vec![Stmt::Assign {
                var: "filled".into(),
                expr: Expr::FillNa { frame: frame.clone(), value: FillValue::Float(0.0) },
            }]));
            frame = "filled".into();
        }
        nb.push_cell(Cell::code(vec![Stmt::Assign {
            var: "long".into(),
            expr: Expr::Melt {
                frame,
                id_vars: table.meta.dim_cols.clone(),
                value_vars: table.meta.collapse_cols.clone(),
                var_name: "period".into(),
                value_name: "value".into(),
            },
        }]));
        if self.rng.random_bool(0.6) {
            nb.push_cell(Cell::code(vec![Stmt::Assign {
                var: "agg".into(),
                expr: Expr::GroupBy {
                    frame: "long".into(),
                    keys: vec![table.meta.dim_cols[0].clone()],
                    aggs: vec![("value".into(), Agg::Sum)],
                },
            }]));
        }
    }

    fn flow_from_fact(&mut self, nb: &mut Notebook, doomed: bool) {
        let n = self.rng.random_range(8..20);
        let entities = self.tables.entities(n);
        let fact = self.tables.fact_table(&entities);
        let doom_file = doomed && self.rng.random_bool(0.5);
        let fname = format!("events_{}.csv", self.serial);
        let (path, md) =
            self.plant_file(nb, &fname, write_csv_string(&fact.df), doom_file);
        let mut c = Cell::code(vec![Stmt::Assign {
            var: "df0".into(),
            expr: Expr::ReadCsv { path },
        }]);
        c.markdown = md;
        nb.push_cell(c);

        let mut dims = fact.meta.dim_cols.clone();
        let mut measures = fact.meta.measure_cols.clone();
        let mut has_nulls = fact.df.columns().iter().any(|c| c.null_count() > 0);
        let mut frame = "df0".to_string();
        let mut var_serial = 0usize;
        let mut prev_op: Option<&'static str> = None;
        let mut pivoted = false;
        let mut joined = false;
        let steps = self.rng.random_range(2..=6);

        for _ in 0..steps {
            // Candidate weights: Table 10 marginals × state modifiers ×
            // sequence-correlation boosts.
            let mut cand: Vec<(&'static str, f64)> = Vec::new();
            if !pivoted {
                if !dims.is_empty() && !measures.is_empty() {
                    let mut w = 0.33;
                    if prev_op == Some("merge") {
                        w *= 2.0; // join → aggregate
                    }
                    cand.push(("groupby", w));
                }
                if !joined {
                    cand.push(("merge", 0.28));
                }
                cand.push(("concat", 0.30));
                if dims.len() >= 2 && !measures.is_empty() {
                    let mut w = 0.02;
                    if prev_op == Some("groupby") {
                        w *= 3.0; // aggregate → cross-tab
                    }
                    cand.push(("pivot", w));
                }
            }
            let null_boost = if has_nulls { 2.0 } else { 0.35 };
            let mut w_drop = 0.16 * null_boost;
            let mut w_fill = 0.14 * null_boost;
            if prev_op == Some("dropna") {
                w_fill *= 0.2;
            }
            if prev_op == Some("fillna") {
                w_drop *= 0.2;
            }
            cand.push(("dropna", w_drop));
            cand.push(("fillna", w_fill));

            let total: f64 = cand.iter().map(|(_, w)| w).sum();
            let mut roll = self.rng.random_range(0.0..total);
            let mut pick = cand[0].0;
            for (op, w) in &cand {
                if roll < *w {
                    pick = op;
                    break;
                }
                roll -= w;
            }

            var_serial += 1;
            let var = format!("df{var_serial}");
            match pick {
                "groupby" => {
                    let key = dims[self.rng.random_range(0..dims.len())].clone();
                    let m = measures[self.rng.random_range(0..measures.len())].clone();
                    nb.push_cell(Cell::code(vec![Stmt::Assign {
                        var: var.clone(),
                        expr: Expr::GroupBy {
                            frame: frame.clone(),
                            keys: vec![key.clone()],
                            aggs: vec![(m.clone(), Agg::Sum)],
                        },
                    }]));
                    dims = vec![key];
                    measures = vec![m];
                    has_nulls = false;
                }
                "merge" => {
                    // Mint a dimension table joinable on the entity key.
                    let dim =
                        self.tables.dimension_table(&entities, "entity_id");
                    let dname = format!("dim_{}.csv", self.serial);
                    let (dpath, dmd) =
                        self.plant_file(nb, &dname, write_csv_string(&dim.df), false);
                    let mut cc = Cell::code(vec![Stmt::Assign {
                        var: "dim".into(),
                        expr: Expr::ReadCsv { path: dpath },
                    }]);
                    cc.markdown = dmd;
                    nb.push_cell(cc);
                    let left_key = fact.meta.key_cols[0].clone();
                    // Only valid while the key survives in the frame.
                    if !dims.contains(&left_key) {
                        var_serial -= 1;
                        continue;
                    }
                    nb.push_cell(Cell::code(vec![Stmt::Assign {
                        var: var.clone(),
                        expr: Expr::Merge {
                            left: frame.clone(),
                            right: "dim".into(),
                            left_on: vec![left_key.clone()],
                            right_on: vec!["entity_id".into()],
                            how: autosuggest_dataframe::ops::JoinType::Inner,
                        },
                    }]));
                    // Columns shared by both sides get _x/_y suffixes in the
                    // merge output; keep downstream references valid.
                    let dim_names: Vec<&str> =
                        dim.df.column_names().into_iter().collect();
                    let dim_owned: Vec<String> =
                        dim_names.iter().map(|s| s.to_string()).collect();
                    for d in dims.iter_mut() {
                        if dim_owned.contains(d) && *d != left_key {
                            *d = format!("{d}_x");
                        }
                    }
                    for m in measures.iter_mut() {
                        if dim_owned.contains(m) {
                            *m = format!("{m}_x");
                        }
                    }
                    dims.push("name".into());
                    joined = true;
                }
                "concat" => {
                    nb.push_cell(Cell::code(vec![Stmt::Assign {
                        var: var.clone(),
                        expr: Expr::Concat { frames: vec![frame.clone(), frame.clone()] },
                    }]));
                }
                "pivot" => {
                    let header = dims
                        .iter()
                        .find(|d| *d == "year" || *d == "quarter")
                        .cloned()
                        .or_else(|| dims.last().cloned())
                        .unwrap_or_else(|| "year".to_string());
                    let index: Vec<String> =
                        dims.iter().filter(|d| **d != header).cloned().collect();
                    if index.is_empty() {
                        var_serial -= 1;
                        continue;
                    }
                    nb.push_cell(Cell::code(vec![Stmt::Assign {
                        var: var.clone(),
                        expr: Expr::Pivot {
                            frame: frame.clone(),
                            index,
                            header: vec![header],
                            values: measures[0].clone(),
                            agg: Agg::Sum,
                        },
                    }]));
                    pivoted = true;
                }
                "dropna" => {
                    nb.push_cell(Cell::code(vec![Stmt::Assign {
                        var: var.clone(),
                        expr: Expr::DropNa {
                            frame: frame.clone(),
                            how_all: false,
                            subset: None,
                        },
                    }]));
                    has_nulls = false;
                }
                "fillna" => {
                    nb.push_cell(Cell::code(vec![Stmt::Assign {
                        var: var.clone(),
                        expr: Expr::FillNa {
                            frame: frame.clone(),
                            value: FillValue::Float(0.0),
                        },
                    }]));
                    has_nulls = false;
                }
                _ => unreachable!("unknown op"),
            }
            frame = var;
            prev_op = Some(pick);
        }
    }
}

/// Local alias to keep `join_notebook_for`'s signature readable.
type Vec1 = Notebook;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{ReplayEngine, ReplayOutcome};

    #[test]
    fn small_corpus_generates() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(1)).generate();
        assert!(corpus.notebooks.len() >= 150);
        // Unique ids.
        let ids: std::collections::HashSet<_> =
            corpus.notebooks.iter().map(|n| &n.id).collect();
        assert_eq!(ids.len(), corpus.notebooks.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusGenerator::new(CorpusConfig::small(7)).generate();
        let b = CorpusGenerator::new(CorpusConfig::small(7)).generate();
        assert_eq!(a.notebooks.len(), b.notebooks.len());
        for (x, y) in a.notebooks.iter().zip(&b.notebooks) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.cells.len(), y.cells.len());
        }
    }

    #[test]
    fn replay_succeeds_on_a_healthy_fraction() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(3)).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        let mut ok = 0;
        let mut exec_errors = Vec::new();
        for nb in &corpus.notebooks {
            let report = engine.replay(nb);
            match report.outcome {
                ReplayOutcome::Success => ok += 1,
                ReplayOutcome::ExecutionError(e) => exec_errors.push((nb.id.clone(), e)),
                _ => {}
            }
        }
        let frac = ok as f64 / corpus.notebooks.len() as f64;
        // Planted unrecoverable failures put success in a Table-2-like band.
        assert!(
            (0.25..=0.85).contains(&frac),
            "replay success fraction {frac}; exec errors: {exec_errors:?}"
        );
        // Execution errors (bugs in generated programs) must be rare.
        assert!(
            exec_errors.len() <= corpus.notebooks.len() / 20,
            "too many execution errors: {exec_errors:?}"
        );
    }

    #[test]
    fn without_failure_planting_everything_replays() {
        let mut cfg = CorpusConfig::small(5);
        cfg.plant_failures = false;
        let corpus = CorpusGenerator::new(cfg).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        for nb in &corpus.notebooks {
            let report = engine.replay(nb);
            assert_eq!(
                report.outcome,
                ReplayOutcome::Success,
                "notebook {} failed: {:?}",
                nb.id,
                report.outcome
            );
        }
    }

    #[test]
    fn flow_notebooks_produce_sequences() {
        let mut cfg = CorpusConfig::small(11);
        cfg.plant_failures = false;
        cfg.join_notebooks = 0;
        cfg.groupby_notebooks = 0;
        cfg.pivot_notebooks = 0;
        cfg.unpivot_notebooks = 0;
        cfg.json_notebooks = 0;
        cfg.flow_notebooks = 20;
        let corpus = CorpusGenerator::new(cfg).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        let mut seq_lens = Vec::new();
        for nb in &corpus.notebooks {
            let report = engine.replay(nb);
            assert_eq!(report.outcome, ReplayOutcome::Success, "{}", nb.id);
            seq_lens.push(report.flow.op_sequence().len());
        }
        assert!(seq_lens.iter().any(|&l| l >= 3), "lens {seq_lens:?}");
    }
}
