//! The notebook representation: cells, attached repository files, and the
//! provenance metadata the splitter needs.

use crate::lang::{render_stmt, CellAst};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One notebook cell: executable statements plus optional adjacent
/// markdown (which may contain data-set URLs the replay engine scavenges,
/// §3.2 method 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    pub ast: CellAst,
    /// Markdown text adjacent to this code cell.
    pub markdown: Option<String>,
}

impl Cell {
    pub fn code(ast: CellAst) -> Self {
        Cell { ast, markdown: None }
    }

    /// Render the cell as source text (what `.ipynb` JSON would hold).
    pub fn source(&self) -> String {
        self.ast
            .iter()
            .map(render_stmt)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A notebook together with the repository it was "cloned" with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Notebook {
    /// Unique id (the crawl's file identity).
    pub id: String,
    /// The dataset group this notebook works on. The 80/20 splitter keeps
    /// all notebooks of a group on the same side to avoid leakage (§6.1).
    pub dataset_group: String,
    pub cells: Vec<Cell>,
    /// Files present in the notebook's repository, keyed by repo-relative
    /// path (e.g. `data/titanic.csv`) with CSV/JSON text content.
    pub repo_files: HashMap<String, String>,
}

impl Notebook {
    pub fn new(id: impl Into<String>, dataset_group: impl Into<String>) -> Self {
        Notebook {
            id: id.into(),
            dataset_group: dataset_group.into(),
            cells: Vec::new(),
            repo_files: HashMap::new(),
        }
    }

    pub fn push_cell(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    pub fn add_file(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.repo_files.insert(path.into(), content.into());
    }

    /// Total statement count (diagnostics).
    pub fn num_statements(&self) -> usize {
        self.cells.iter().map(|c| c.ast.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{Expr, Stmt};

    #[test]
    fn cell_renders_multi_statement_source() {
        let cell = Cell::code(vec![
            Stmt::Import { package: "pandas".into() },
            Stmt::Assign {
                var: "df".into(),
                expr: Expr::ReadCsv { path: "data.csv".into() },
            },
        ]);
        let src = cell.source();
        assert!(src.starts_with("import pandas\n"));
        assert!(src.contains("pd.read_csv"));
    }

    #[test]
    fn notebook_accumulates_cells_and_files() {
        let mut nb = Notebook::new("nb-1", "titanic");
        nb.push_cell(Cell::code(vec![]));
        nb.add_file("data/titanic.csv", "a,b\n1,2\n");
        assert_eq!(nb.cells.len(), 1);
        assert!(nb.repo_files.contains_key("data/titanic.csv"));
        assert_eq!(nb.num_statements(), 0);
    }
}
