//! The mini pipeline language notebooks are written in.
//!
//! Real notebooks contain Python; replaying them requires a Python runtime.
//! Our synthetic notebooks are written in a small, Pandas-shaped AST that
//! the replay engine interprets directly — the same information a dynamic
//! tracer extracts from Python (which API was called, on which frames, with
//! which parameters), without the parsing detour. Each statement also
//! renders to Pandas-style source text so notebooks remain human-readable.

use autosuggest_dataframe::ops::{Agg, JoinType};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// An expression producing a DataFrame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `pd.read_csv(path)` — the path may be "hard-coded" to an absolute
    /// location that only existed on the author's machine (§3.2).
    ReadCsv { path: String },
    /// `pd.json_normalize(json.load(open(path)))`.
    JsonNormalize { path: String, record_path: Option<Vec<String>> },
    /// `pd.merge(left, right, left_on=…, right_on=…, how=…)`.
    Merge {
        left: String,
        right: String,
        left_on: Vec<String>,
        right_on: Vec<String>,
        how: JoinType,
    },
    /// `df.groupby(keys)[cols].agg(…)`.
    GroupBy {
        frame: String,
        keys: Vec<String>,
        aggs: Vec<(String, Agg)>,
    },
    /// `df.pivot_table(index=…, columns=…, values=…, aggfunc=…)`.
    Pivot {
        frame: String,
        index: Vec<String>,
        header: Vec<String>,
        values: String,
        agg: Agg,
    },
    /// `pd.melt(df, id_vars=…, value_vars=…)`.
    Melt {
        frame: String,
        id_vars: Vec<String>,
        value_vars: Vec<String>,
        var_name: String,
        value_name: String,
    },
    /// `pd.concat([a, b, …])`.
    Concat { frames: Vec<String> },
    /// `df.dropna()`.
    DropNa { frame: String, how_all: bool, subset: Option<Vec<String>> },
    /// `df.fillna(value)`.
    FillNa { frame: String, value: FillValue },
    /// A bare variable reference (aliasing).
    Var(String),
}

/// The scalar passed to `fillna` (kept separate from `Value` so the AST
/// stays independent of the engine's value representation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FillValue {
    Int(i64),
    Float(f64),
    Str(String),
}

/// A statement in a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `import pkg` — fails when `pkg` is not installed in the replay
    /// environment, exercising the §3.2 missing-package path.
    Import { package: String },
    /// `var = expr`.
    Assign { var: String, expr: Expr },
    /// `df.head()` style inspection; evaluates but discards.
    Inspect { expr: Expr },
}

/// The parsed body of one code cell.
pub type CellAst = Vec<Stmt>;

/// Render a statement as Pandas-style source text.
pub fn render_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Import { package } => format!("import {package}"),
        Stmt::Assign { var, expr } => format!("{var} = {}", render_expr(expr)),
        Stmt::Inspect { expr } => render_expr(expr),
    }
}

fn str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("'{s}'")).collect();
    format!("[{}]", quoted.join(", "))
}

/// Render an expression as Pandas-style source text.
pub fn render_expr(expr: &Expr) -> String {
    match expr {
        Expr::ReadCsv { path } => format!("pd.read_csv('{path}')"),
        Expr::JsonNormalize { path, record_path } => {
            let rp = match record_path {
                Some(p) => format!(", record_path={}", str_list(p)),
                None => String::new(),
            };
            format!("pd.json_normalize(json.load(open('{path}')){rp})")
        }
        Expr::Merge { left, right, left_on, right_on, how } => format!(
            "pd.merge({left}, {right}, left_on={}, right_on={}, how='{how}')",
            str_list(left_on),
            str_list(right_on),
        ),
        Expr::GroupBy { frame, keys, aggs } => {
            let mut s = format!("{frame}.groupby({}).agg({{", str_list(keys));
            for (i, (c, a)) in aggs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "'{c}': '{a}'");
            }
            s.push_str("})");
            s
        }
        Expr::Pivot { frame, index, header, values, agg } => format!(
            "{frame}.pivot_table(index={}, columns={}, values='{values}', aggfunc='{agg}')",
            str_list(index),
            str_list(header),
        ),
        Expr::Melt { frame, id_vars, value_vars, var_name, value_name } => format!(
            "pd.melt({frame}, id_vars={}, value_vars={}, var_name='{var_name}', value_name='{value_name}')",
            str_list(id_vars),
            str_list(value_vars),
        ),
        Expr::Concat { frames } => format!("pd.concat([{}])", frames.join(", ")),
        Expr::DropNa { frame, how_all, subset } => {
            let how = if *how_all { "how='all'" } else { "how='any'" };
            match subset {
                Some(cols) => format!("{frame}.dropna({how}, subset={})", str_list(cols)),
                None => format!("{frame}.dropna({how})"),
            }
        }
        Expr::FillNa { frame, value } => {
            let v = match value {
                FillValue::Int(i) => i.to_string(),
                FillValue::Float(f) => f.to_string(),
                FillValue::Str(s) => format!("'{s}'"),
            };
            format!("{frame}.fillna({v})")
        }
        Expr::Var(v) => v.clone(),
    }
}

/// Variables an expression reads (data-flow edges, §3.3).
pub fn expr_inputs(expr: &Expr) -> Vec<&str> {
    match expr {
        Expr::ReadCsv { .. } | Expr::JsonNormalize { .. } => vec![],
        Expr::Merge { left, right, .. } => vec![left, right],
        Expr::GroupBy { frame, .. }
        | Expr::Pivot { frame, .. }
        | Expr::Melt { frame, .. }
        | Expr::DropNa { frame, .. }
        | Expr::FillNa { frame, .. } => vec![frame],
        Expr::Concat { frames } => frames.iter().map(String::as_str).collect(),
        Expr::Var(v) => vec![v],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_merge_like_pandas() {
        let e = Expr::Merge {
            left: "result".into(),
            right: "devices".into(),
            left_on: vec!["device".into()],
            right_on: vec!["Model".into()],
            how: JoinType::Left,
        };
        assert_eq!(
            render_expr(&e),
            "pd.merge(result, devices, left_on=['device'], right_on=['Model'], how='left')"
        );
    }

    #[test]
    fn renders_groupby_and_pivot() {
        let g = Expr::GroupBy {
            frame: "df".into(),
            keys: vec!["company".into(), "year".into()],
            aggs: vec![("revenue".into(), Agg::Sum)],
        };
        assert_eq!(
            render_expr(&g),
            "df.groupby(['company', 'year']).agg({'revenue': 'sum'})"
        );
        let p = Expr::Pivot {
            frame: "df".into(),
            index: vec!["company".into()],
            header: vec!["year".into()],
            values: "revenue".into(),
            agg: Agg::Sum,
        };
        assert!(render_expr(&p).contains("pivot_table(index=['company']"));
    }

    #[test]
    fn renders_statements() {
        let s = Stmt::Assign {
            var: "df".into(),
            expr: Expr::ReadCsv { path: "D:\\proj\\titanic.csv".into() },
        };
        assert_eq!(render_stmt(&s), "df = pd.read_csv('D:\\proj\\titanic.csv')");
        assert_eq!(
            render_stmt(&Stmt::Import { package: "seaborn".into() }),
            "import seaborn"
        );
    }

    #[test]
    fn expr_inputs_track_dataflow() {
        let e = Expr::Concat { frames: vec!["a".into(), "b".into()] };
        assert_eq!(expr_inputs(&e), vec!["a", "b"]);
        assert!(expr_inputs(&Expr::ReadCsv { path: "x.csv".into() }).is_empty());
        let m = Expr::Melt {
            frame: "wide".into(),
            id_vars: vec![],
            value_vars: vec!["2006".into()],
            var_name: "year".into(),
            value_name: "v".into(),
        };
        assert_eq!(expr_inputs(&m), vec!["wide"]);
    }
}
