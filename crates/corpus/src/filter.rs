//! Post-replay filtering (§6.1): drop duplicate and uninformative
//! invocations before training.

use crate::replay::OpInvocation;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Filtering outcome counts (the deltas behind Table 2's last row).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    pub total: usize,
    /// Identical invocation (same operator, same inputs, same parameters) —
    /// within one notebook (loops) or across notebooks (forks/copies).
    pub dropped_duplicate: usize,
    /// Inputs trivially small (fewer than `min_rows` rows).
    pub dropped_tiny: usize,
    pub kept: usize,
}

/// Deduplicate and de-trivialise invocations.
///
/// The duplicate key is (operator, input hashes, full parameters) — the
/// paper's "identical invocation on the same tables across notebooks, or
/// repetitive invocations inside a loop". `min_rows` = 5 matches "input
/// tables are trivially small with less than 5 rows".
pub fn filter_invocations(
    invocations: Vec<OpInvocation>,
    min_rows: usize,
) -> (Vec<OpInvocation>, FilterStats) {
    let mut stats = FilterStats { total: invocations.len(), ..Default::default() };
    let mut seen: HashSet<String> = HashSet::with_capacity(invocations.len());
    let mut kept = Vec::with_capacity(invocations.len());
    for inv in invocations {
        if inv.inputs.iter().any(|t| t.num_rows() < min_rows) {
            stats.dropped_tiny += 1;
            continue;
        }
        // The output hash disambiguates operators without frame inputs
        // (json_normalize reads a file): identical op+inputs+params implies
        // an identical output, so true duplicates still collapse.
        let key = format!(
            "{:?}|{:?}|{}|{}",
            inv.op,
            inv.input_hashes,
            serde_json::to_string(&inv.params)
                .unwrap_or_else(|_| format!("{:?}", inv.params)),
            inv.output_hash,
        );
        if !seen.insert(key) {
            stats.dropped_duplicate += 1;
            continue;
        }
        kept.push(inv);
    }
    stats.kept = kept.len();
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowgraph::OpKind;
    use crate::replay::OpParams;
    use autosuggest_dataframe::{DataFrame, Value};

    fn table(rows: usize) -> DataFrame {
        DataFrame::from_columns(vec![(
            "a",
            (0..rows as i64).map(Value::Int).collect(),
        )])
        .unwrap()
    }

    fn inv(nb: &str, rows: usize, how_all: bool) -> OpInvocation {
        let t = table(rows);
        OpInvocation {
            notebook_id: nb.into(),
            dataset_group: "g".into(),
            cell_index: 0,
            op: OpKind::DropNa,
            input_hashes: vec![t.content_hash()],
            inputs: vec![t],
            params: OpParams::DropNa { how_all, subset: None },
            output_hash: 1,
            output_rows: rows,
            output_cols: 1,
        }
    }

    #[test]
    fn duplicates_are_dropped_across_notebooks() {
        let (kept, stats) =
            filter_invocations(vec![inv("a", 10, false), inv("b", 10, false)], 5);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.dropped_duplicate, 1);
    }

    #[test]
    fn different_params_are_not_duplicates() {
        let (kept, _) =
            filter_invocations(vec![inv("a", 10, false), inv("a", 10, true)], 5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn tiny_inputs_are_dropped() {
        let (kept, stats) =
            filter_invocations(vec![inv("a", 3, false), inv("b", 10, false)], 5);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.dropped_tiny, 1);
        assert_eq!(stats.total, 2);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn different_inputs_same_params_kept() {
        let (kept, _) =
            filter_invocations(vec![inv("a", 10, false), inv("a", 11, false)], 5);
        assert_eq!(kept.len(), 2);
    }
}
