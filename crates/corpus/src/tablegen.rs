//! Synthetic table generation.
//!
//! The corpus substitute must plant the statistical structure the paper
//! observes in real notebooks, because that structure is what the
//! predictors learn:
//!
//! * dimension columns are low-cardinality, string-ish or small-range
//!   numeric (years), and sit to the *left*; measures are high-cardinality
//!   floats to the *right* (§4.2's features);
//! * key columns are near-unique and left-most, while decoy integer columns
//!   (ranks, counts) produce *accidental containment* (Fig. 5 / Example 1);
//! * functional dependencies tie entity attributes together
//!   (company → sector), which drives pivot emptiness (Fig. 8);
//! * wide pivot-shaped tables carry a homogeneous block of collapsible
//!   columns (years, months, countries) next to a few id columns (Fig. 11);
//! * only ~68% of joins are strict foreign keys; the rest are ad-hoc with
//!   partial overlap (§6.5.1), and ~78% of joins are inner (§6.5.2).

use autosuggest_dataframe::ops::JoinType;
use autosuggest_dataframe::{Column, DataFrame, Value};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Vocabulary pools the generator draws names and values from.
const SECTORS: [&str; 12] = [
    "Aerospace", "Business Services", "Consumer Staples", "Utilities",
    "Energy", "Finance", "Healthcare", "Materials", "Retail",
    "Technology", "Telecom", "Transport",
];
const COMPANY_WORDS: [&str; 18] = [
    "Aerojet", "Astro", "Harte", "Cine", "Yield", "York", "Boeing", "Delta",
    "Nimbus", "Orion", "Pioneer", "Quantum", "Ridge", "Solar", "Titan",
    "Vertex", "Willow", "Zephyr",
];
const COMPANY_SUFFIX: [&str; 6] = ["Corp", "Inc", "Group", "Ltd", "Holdings", "Co"];
const REGIONS: [&str; 8] = [
    "North", "South", "East", "West", "Central", "Pacific", "Atlantic", "Mountain",
];
#[allow(dead_code)] // reserved for future table archetypes
const PRODUCTS: [&str; 10] = [
    "widget", "gadget", "module", "sensor", "panel", "filter", "valve",
    "rotor", "cable", "switch",
];
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
    "Nov", "Dec",
];
const COUNTRIES: [&str; 10] = [
    "USA", "Canada", "Mexico", "Brazil", "Germany", "France", "Japan",
    "China", "India", "Australia",
];
/// Dimension column-name pool (drives the *col-name-freq* prior).
const DIM_NAMES: [&str; 8] = [
    "sector", "region", "category", "product", "department", "country",
    "segment", "status",
];
/// Measure column-name pool.
const MEASURE_NAMES: [&str; 10] = [
    "revenue", "profit", "sales", "price", "amount", "score", "market_cap",
    "cost", "units", "balance",
];

/// An entity shared between joinable tables, with FD-linked attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    pub id: String,
    pub name: String,
    pub category: String,
}

/// What role the generator assigned to each column — the ground truth the
/// notebook author "knows" when writing operator calls.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableMeta {
    /// Near-unique identifying column(s).
    pub key_cols: Vec<String>,
    /// Dimension (GroupBy-able) columns, including keys.
    pub dim_cols: Vec<String>,
    /// Measure (aggregatable) columns.
    pub measure_cols: Vec<String>,
    /// For wide pivot-shaped tables: the block of columns an Unpivot should
    /// collapse.
    pub collapse_cols: Vec<String>,
}

/// A generated table plus its role metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenTable {
    pub df: DataFrame,
    pub meta: TableMeta,
}

/// A generated join scenario: two tables plus the author's ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinCase {
    pub left: GenTable,
    pub right: GenTable,
    pub left_on: Vec<String>,
    pub right_on: Vec<String>,
    pub how: JoinType,
}

/// Knobs for table generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableGenConfig {
    /// Range of entity counts for fact/dimension tables.
    pub min_entities: usize,
    pub max_entities: usize,
    /// Range of the year span for temporal dimensions.
    pub min_years: usize,
    pub max_years: usize,
}

impl Default for TableGenConfig {
    fn default() -> Self {
        TableGenConfig { min_entities: 8, max_entities: 30, min_years: 2, max_years: 5 }
    }
}

/// Table kinds the generator can produce directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableKind {
    Fact,
    Dimension,
    WidePivot,
}

/// Seeded generator of realistic tables and join scenarios.
pub struct TableGenerator {
    rng: StdRng,
    cfg: TableGenConfig,
    serial: u64,
}

impl TableGenerator {
    pub fn new(seed: u64, cfg: TableGenConfig) -> Self {
        TableGenerator { rng: StdRng::seed_from_u64(seed), cfg, serial: 0 }
    }

    pub fn with_seed(seed: u64) -> Self {
        TableGenerator::new(seed, TableGenConfig::default())
    }

    fn next_serial(&mut self) -> u64 {
        self.serial += 1;
        self.serial
    }

    /// Generate a pool of entities with FD-linked attributes
    /// (id → name → category).
    pub fn entities(&mut self, n: usize) -> Vec<Entity> {
        let serial = self.next_serial();
        let mut out: Vec<Entity> = (0..n)
            .map(|i| {
                let word = COMPANY_WORDS[self.rng.random_range(0..COMPANY_WORDS.len())];
                let suffix = COMPANY_SUFFIX[self.rng.random_range(0..COMPANY_SUFFIX.len())];
                Entity {
                    id: format!("E{serial:03}{i:03}"),
                    name: format!("{word} {suffix} {i}"),
                    category: SECTORS[self.rng.random_range(0..SECTORS.len())].to_string(),
                }
            })
            .collect();
        // Shuffle so id columns are not accidentally sorted (sorted-ness
        // must be a weak signal, as in real tables).
        use rand::seq::SliceRandom;
        out.shuffle(&mut self.rng);
        out
    }

    /// A fact table: FD-linked dimension columns on the left (category,
    /// entity id, entity name), a temporal dimension, then measures on the
    /// right. Row = entity × period (optionally × quarter).
    pub fn fact_table(&mut self, entities: &[Entity]) -> GenTable {
        let years = self.rng.random_range(self.cfg.min_years..=self.cfg.max_years);
        let base_year = 2004 + self.rng.random_range(0..10) as i64;
        let with_quarter = self.rng.random_bool(0.4);
        let n_measures = self.rng.random_range(1..=3);
        let mut measure_names = self.pick_distinct(&MEASURE_NAMES, n_measures);
        // Column-name variation: notebooks rarely reuse canonical names, so
        // name-frequency priors (SQL-history, col-name-freq) see many
        // unknown names and must fall back to content signals.
        let serial_tag = self.serial % 100;
        for name in measure_names.iter_mut() {
            if self.rng.random_bool(0.35) {
                let suffix = ["_usd", "_total", "_fy", "_adj", "_q", "_est"]
                    [self.rng.random_range(0..6)];
                name.push_str(suffix);
            } else if self.rng.random_bool(0.3) {
                // Dataset-specific names the training prior has never seen.
                name.push_str(&format!("_{serial_tag}"));
            }
        }
        // Measure flavours: floats, integers (units sold), and low-
        // cardinality ratings (the trap for cardinality heuristics).
        let measure_flavours: Vec<u8> = (0..n_measures)
            .map(|_| self.rng.random_range(0..10))
            .collect();
        let extra_dim = self.rng.random_bool(0.6);
        // One draw for both dimension names so they never collide.
        let dim_names = self.pick_distinct(&DIM_NAMES, 2);
        let (mut cat_name, mut extra_dim_name) =
            (dim_names[0].clone(), dim_names[1].clone());
        // Numeric-coded category: ~40% of tables store the category as an
        // integer code ("sector_id") — a *numeric dimension*, the case that
        // defeats type-based dimension/measure heuristics (Table 6).
        let coded_cat = self.rng.random_bool(0.5);
        if coded_cat {
            cat_name.push_str("_id");
        } else if self.rng.random_bool(0.45) {
            // Name variation for string dims too (weakens name priors);
            // serial suffixes emulate dataset-specific vocabulary.
            if self.rng.random_bool(0.5) {
                cat_name.push_str(["_name", "_code", "_grp"][self.rng.random_range(0..3)]);
            } else {
                cat_name.push_str(&format!("_{}", self.serial % 100));
            }
        }
        if self.rng.random_bool(0.45) {
            extra_dim_name.push_str(["_name", "_code", "_grp"][self.rng.random_range(0..3)]);
        }

        let id_col = self.key_name();
        let mut cat = Vec::new();
        let mut id = Vec::new();
        let mut name = Vec::new();
        let mut year = Vec::new();
        let mut quarter = Vec::new();
        let mut extra = Vec::new();
        let mut measures: Vec<Vec<Value>> = vec![Vec::new(); n_measures];

        for e in entities {
            // Per-entity base levels so measures correlate with entities.
            let bases: Vec<f64> = (0..n_measures)
                .map(|_| self.rng.random_range(100.0..5000.0))
                .collect();
            for y in 0..years {
                let periods = if with_quarter { 4 } else { 1 };
                for q in 0..periods {
                    cat.push(if coded_cat {
                        let code = SECTORS
                            .iter()
                            .position(|c| *c == e.category)
                            .unwrap_or(0) as i64;
                        Value::Int(100 + code)
                    } else {
                        Value::Str(e.category.clone())
                    });
                    id.push(Value::Str(e.id.clone()));
                    name.push(Value::Str(e.name.clone()));
                    year.push(Value::Int(base_year + y as i64));
                    if with_quarter {
                        quarter.push(Value::Str(format!("Q{}", q + 1)));
                    }
                    if extra_dim {
                        // Independent dimension: drawn per row, not per
                        // entity, so it carries no FD to the entity cluster
                        // (a valid standalone pivot header).
                        extra.push(Value::Str(
                            REGIONS[self.rng.random_range(0..REGIONS.len())].to_string(),
                        ));
                    }
                    for ((m, base), flavour) in
                        measures.iter_mut().zip(&bases).zip(&measure_flavours)
                    {
                        let trend = 1.0 + 0.05 * y as f64;
                        let noise = self.rng.random_range(0.9..1.1);
                        let v = base * trend * noise;
                        m.push(match flavour {
                            0..=5 => Value::Float((v * 100.0).round() / 100.0),
                            6..=7 => Value::Int(v.round() as i64),
                            // Rating-like: 1.0..5.0 in half steps — few
                            // distinct values despite being a measure.
                            _ => Value::Float(
                                ((v % 9.0) / 9.0 * 8.0).round() / 2.0 + 1.0,
                            ),
                        });
                    }
                }
            }
        }
        let n_rows = id.len();

        // Dimension block with a randomised key position: real tables do
        // not always lead with the key, so left-ness must stay a signal,
        // not an oracle.
        let mut dim_block: Vec<Column> = vec![
            Column::new(id_col.clone(), id),
            Column::new(cat_name.clone(), cat),
            Column::new("company", name),
        ];
        let swap = self.rng.random_range(0..3);
        dim_block.swap(0, swap);
        let mut cols: Vec<Column> = dim_block;
        cols.push(Column::new("year", year));
        if with_quarter {
            cols.push(Column::new("quarter", quarter));
        }
        if extra_dim {
            cols.push(Column::new(extra_dim_name.clone(), extra));
        }
        // Integer decoy: a row-id/rank column whose values accidentally
        // contain every small-int column of other tables (the Fig. 5 trap).
        let with_decoy = self.rng.random_bool(0.6);
        if with_decoy {
            let decoy_name = ["row_id", "rank", "index", "position"]
                [self.rng.random_range(0..4)];
            let at = self.rng.random_range(0..=cols.len().min(2));
            cols.insert(
                at,
                Column::new(
                    decoy_name,
                    (1..=n_rows as i64).map(Value::Int).collect(),
                ),
            );
        }
        for (vals, mname) in measures.into_iter().zip(&measure_names) {
            cols.push(Column::new(mname.clone(), vals));
        }
        // In ~45% of tables, interleave the measures among the dimensions:
        // real tables do not keep a clean dims-left/measures-right layout,
        // so pure position cannot rescue a ranking (it stays a weak prior).
        if self.rng.random_bool(0.45) {
            for _ in 0..n_measures {
                let from = cols.len() - 1;
                let col = cols.remove(from);
                let to = self.rng.random_range(0..cols.len());
                cols.insert(to, col);
            }
        }
        // Occasionally sprinkle nulls into a measure (dropna/fillna fodder).
        let df = {
            let mut df = DataFrame::new(cols).unwrap_or_else(|_| DataFrame::empty());
            if self.rng.random_bool(0.4) {
                let target = df.num_columns() - 1;
                let rows = df.num_rows();
                let mut count = (rows / 12).max(1);
                let col = &mut df_column_mut(&mut df, target);
                while count > 0 {
                    let at = self.rng.random_range(0..rows);
                    col[at] = Value::Null;
                    count -= 1;
                }
            }
            df
        };

        let mut dim_cols = vec![cat_name, id_col.clone(), "company".into(), "year".into()];
        if with_quarter {
            dim_cols.push("quarter".into());
        }
        if extra_dim {
            dim_cols.push(extra_dim_name);
        }
        GenTable {
            df,
            meta: TableMeta {
                key_cols: vec![id_col],
                dim_cols,
                measure_cols: measure_names,
                collapse_cols: vec![],
            },
        }
    }

    /// A dimension table over (a superset or subset of) the given entities:
    /// key + FD attributes + a small decoy integer column whose values are
    /// accidentally contained in fact-table ranks.
    pub fn dimension_table(&mut self, entities: &[Entity], key_name: &str) -> GenTable {
        self.dimension_table_with_dups(entities, key_name, false)
    }

    /// Like [`TableGenerator::dimension_table`], optionally duplicating a
    /// fraction of key rows — the ad-hoc, non-curated lookup tables that
    /// break strict-FK methods (§6.5.1: only 68% of notebook joins are
    /// strict foreign keys).
    pub fn dimension_table_with_dups(
        &mut self,
        entities: &[Entity],
        key_name: &str,
        with_dups: bool,
    ) -> GenTable {
        let mut id = Vec::new();
        let mut name = Vec::new();
        let mut cat = Vec::new();
        let mut founded = Vec::new();
        let mut rank = Vec::new();
        for (i, e) in entities.iter().enumerate() {
            let copies = if with_dups && self.rng.random_bool(0.3) { 2 } else { 1 };
            for _ in 0..copies {
                id.push(Value::Str(e.id.clone()));
                name.push(Value::Str(e.name.clone()));
                cat.push(Value::Str(e.category.clone()));
                founded.push(Value::Int(1900 + self.rng.random_range(0..120) as i64));
                rank.push(Value::Int(rank.len() as i64 + 1));
                let _ = i;
            }
        }
        let decoy_name = ["weeks_on_list", "rating", "tier", "rank"]
            [self.rng.random_range(0..4)];
        // Shuffle the leading columns: dimension tables do not always lead
        // with their key, so candidate rankers cannot treat position 0 as
        // an oracle.
        let mut lead: Vec<Column> = vec![
            Column::new(key_name, id),
            Column::new("name", name),
            Column::new("sector", cat),
        ];
        let swap = self.rng.random_range(0..3);
        lead.swap(0, swap);
        let mut cols = lead;
        cols.push(Column::new("founded", founded));
        cols.push(Column::new(decoy_name, rank));
        let df = DataFrame::new(cols).unwrap_or_else(|_| DataFrame::empty());
        GenTable {
            df,
            meta: TableMeta {
                key_cols: vec![key_name.to_string()],
                dim_cols: vec![key_name.to_string(), "name".into(), "sector".into()],
                measure_cols: vec!["founded".into(), decoy_name.into()],
                collapse_cols: vec![],
            },
        }
    }

    /// Append a *string trap* pair to a join case: a near-unique serial
    /// column ("code") with heavily overlapping values placed toward the
    /// right of both tables. Containment-driven rankers fall for it; the
    /// left-most true key and name semantics survive.
    fn plant_code_trap(&mut self, case: &mut JoinCase) {
        let serial = self.next_serial();
        let make = |rows: usize, offset: usize| -> Vec<Value> {
            (0..rows)
                .map(|r| Value::Str(format!("C{serial:03}-{:04}", r + offset)))
                .collect()
        };
        let lrows = case.left.df.num_rows();
        let rrows = case.right.df.num_rows();
        // Offset a little so containment is high but imperfect.
        let l = Column::new("code", make(lrows, 0));
        let r = Column::new("batch_ref", make(rrows, self.rng.random_range(0..3)));
        let _ = case.left.df.add_column(l);
        let _ = case.right.df.add_column(r);
    }

    /// A wide pivot-shaped table: a few id columns plus a homogeneous block
    /// of collapsible columns (years, months, or countries) — Fig. 11's
    /// input shape. `wide` controls the block width.
    pub fn wide_pivot_table(&mut self, wide: usize) -> GenTable {
        assert!(wide >= 2);
        let n_rows = self.rng.random_range(10..40);
        let serial = self.next_serial();
        let block_kind = self.rng.random_range(0..3);
        let block_names: Vec<String> = match block_kind {
            0 => (0..wide).map(|i| (2000 + i as i64).to_string()).collect(),
            1 => (0..wide).map(|i| MONTHS[i % 12].to_string()).collect(),
            _ => (0..wide)
                .map(|i| COUNTRIES[i % COUNTRIES.len()].to_string())
                .collect(),
        };
        // Month/country names repeat past their pool size; disambiguate.
        let block_names: Vec<String> = block_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if block_names[..i].contains(n) {
                    format!("{n}_{i}")
                } else {
                    n.clone()
                }
            })
            .collect();

        let mut cols: Vec<Column> = Vec::new();
        let n_ids = self.rng.random_range(1..=3);
        let mut id_names = Vec::new();
        for k in 0..n_ids {
            let name = match k {
                0 => "name".to_string(),
                1 => "sector".to_string(),
                _ => "code".to_string(),
            };
            let vals: Vec<Value> = (0..n_rows)
                .map(|i| match k {
                    0 => Value::Str(format!(
                        "{} {}",
                        COMPANY_WORDS[(i + serial as usize) % COMPANY_WORDS.len()],
                        i
                    )),
                    1 => Value::Str(SECTORS[i % SECTORS.len()].to_string()),
                    _ => Value::Str(format!("K{serial:02}{i:03}")),
                })
                .collect();
            id_names.push(name.clone());
            cols.push(Column::new(name, vals));
        }
        // Trap 1: a *numeric* id column among the ids. Type- and
        // pattern-based baselines absorb it into the collapse block.
        if self.rng.random_bool(0.5) {
            let vals: Vec<Value> = (1..=n_rows as i64).map(Value::Int).collect();
            id_names.push("account_id".to_string());
            cols.push(Column::new("account_id", vals));
        }
        let mut block_values: Vec<Vec<f64>> = vec![Vec::new(); block_names.len()];
        for row_block in block_values.iter_mut() {
            for _ in 0..n_rows {
                row_block.push((self.rng.random_range(100.0..9000.0) * 100.0_f64).round() / 100.0);
            }
        }
        for (bn, vals) in block_names.iter().zip(&block_values) {
            let vals: Vec<Value> = vals
                .iter()
                .map(|&v| {
                    if self.rng.random_bool(0.05) {
                        Value::Null
                    } else {
                        Value::Float(v)
                    }
                })
                .collect();
            cols.push(Column::new(bn.clone(), vals));
        }
        // Trap 2: a trailing aggregate column ("total") of the same dtype,
        // contiguous with the block but never collapsed by authors. Its
        // value range (~sum of the block) gives the learned model the
        // signal the contiguity heuristic lacks.
        let with_total = self.rng.random_bool(0.4);
        if with_total {
            let totals: Vec<Value> = (0..n_rows)
                .map(|r| {
                    Value::Float(
                        block_values.iter().map(|b| b[r]).sum::<f64>().round(),
                    )
                })
                .collect();
            cols.push(Column::new("total", totals));
        }
        let df = DataFrame::new(cols).unwrap_or_else(|_| DataFrame::empty());
        let mut dim_cols = id_names;
        if with_total {
            dim_cols.push("total".to_string());
        }
        GenTable {
            df,
            meta: TableMeta {
                key_cols: vec![dim_cols[0].clone()],
                dim_cols,
                measure_cols: vec![],
                collapse_cols: block_names,
            },
        }
    }

    /// A complete join scenario with planted ground truth (§4.1 / §6.5.1-2).
    pub fn join_pair(&mut self) -> JoinCase {
        let n = self
            .rng
            .random_range(self.cfg.min_entities..=self.cfg.max_entities);
        let entities = self.entities(n);

        // 68% strict FK joins; the rest are ad-hoc with partial overlap.
        let strict_fk = self.rng.random_bool(0.68);
        let (left_entities, right_entities): (Vec<Entity>, Vec<Entity>) = if strict_fk {
            // Left references a subset; right covers all.
            let keep = entities
                .iter()
                .filter(|_| self.rng.random_bool(0.8))
                .cloned()
                .collect::<Vec<_>>();
            (if keep.is_empty() { entities.clone() } else { keep }, entities.clone())
        } else {
            // Partial overlap in both directions.
            let left: Vec<Entity> = entities
                .iter()
                .filter(|_| self.rng.random_bool(0.75))
                .cloned()
                .collect();
            let mut right: Vec<Entity> = entities
                .iter()
                .filter(|_| self.rng.random_bool(0.75))
                .cloned()
                .collect();
            // Extra right-only entities that never join.
            let extra = self.rng.random_range(1..6);
            right.extend(self.entities(extra));
            (
                if left.is_empty() { entities.clone() } else { left },
                if right.is_empty() { entities } else { right },
            )
        };

        let mut left = self.fact_table(&left_entities);
        // Half the time the right key shares the left key's name (the FK
        // convention); otherwise it differs entirely (Fig. 2's "device" vs
        // "Model").
        let left_key = left.meta.key_cols[0].clone();
        let right_key = if self.rng.random_bool(0.5) {
            left_key.clone()
        } else {
            ["Model", "company_id", "id", "entity"]
                [self.rng.random_range(0..4)]
            .to_string()
        };
        let mut right =
            self.dimension_table_with_dups(&right_entities, &right_key, !strict_fk);

        // Scenario drives both the tables' shapes and the author's join
        // type (§4.1 / §6.5.2): filtering joins are inner; enriching a
        // large central table keeps its rows (left/outer); size-balanced
        // joins default to inner.
        let scenario: f64 = self.rng.random();
        let how;
        if scenario < 0.25 {
            // Filter: right shrinks to key (+1 attribute).
            let keep: Vec<&str> = vec![right_key.as_str(), "name"];
            if let Ok(selected) = right.df.select(&keep) {
                right.df = selected;
            }
            right.meta.dim_cols.retain(|c| keep.contains(&c.as_str()));
            right.meta.measure_cols.clear();
            how = if self.rng.random_bool(0.95) { JoinType::Inner } else { JoinType::Left };
        } else if scenario < 0.5 {
            // Enrichment: the fact table dwarfs the lookup.
            let r: f64 = self.rng.random();
            how = if r < 0.30 {
                JoinType::Inner
            } else if r < 0.90 {
                JoinType::Left
            } else {
                JoinType::Outer
            };
        } else {
            // Symmetric: subsample the fact side to a comparable size.
            let target = ((right.df.num_rows() as f64)
                * self.rng.random_range(0.6..2.4)) as usize;
            let rows = left.df.num_rows();
            // A fact table can come out smaller than the 5-row floor at
            // large corpus scales; `clamp(5, rows)` would then panic on
            // min > max. Identical to the old clamp whenever rows >= 5.
            let target = target.clamp(5.min(rows), rows);
            // Strided sample so the kept rows still span all entities
            // (a prefix would keep only the first few join keys).
            let idx: Vec<usize> = (0..target).map(|i| i * rows / target).collect();
            left.df = left.df.take(&idx);
            let r: f64 = self.rng.random();
            how = if r < 0.90 {
                JoinType::Inner
            } else if r < 0.96 {
                JoinType::Right
            } else {
                JoinType::Outer
            };
        }

        // ~12% of authors join on the entity *name* instead of the id —
        // both are semantically valid, which caps every method's accuracy
        // (the paper's Auto-Suggest tops out at 0.89, not 1.0). Authors who
        // join on names tend to have name-led tables, so position carries a
        // learnable (but not infallible) hint.
        let name_join = self.rng.random_bool(0.12);
        if name_join && self.rng.random_bool(0.6) {
            // Usually the author had no choice: the two tables do not share
            // an id space, so the name is the only usable key.
            if let Ok(pos) = right.df.column_index(&right_key) {
                for v in right.df.column_at_mut(pos).values_mut() {
                    if let autosuggest_dataframe::Value::Str(id) = v {
                        *id = format!("X{id}");
                    }
                }
            }
        }
        let (left_on, right_on) = if name_join {
            if let Ok(pos) = left.df.column_index("company") {
                let col = left.df.column_at_mut(pos).clone();
                // Move company to the front (remove + reinsert).
                let mut names: Vec<String> =
                    left.df.column_names().iter().map(|s| s.to_string()).collect();
                names.remove(pos);
                names.insert(0, col.name().to_string());
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                if let Ok(selected) = left.df.select(&name_refs) {
                    left.df = selected;
                }
            }
            if let Ok(pos) = right.df.column_index("name") {
                let mut names: Vec<String> =
                    right.df.column_names().iter().map(|s| s.to_string()).collect();
                let moved = names.remove(pos);
                names.insert(0, moved);
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                if let Ok(selected) = right.df.select(&name_refs) {
                    right.df = selected;
                }
            }
            ("company".to_string(), "name".to_string())
        } else {
            (left_key, right_key.clone())
        };
        let mut case = JoinCase {
            left,
            right,
            left_on: vec![left_on],
            right_on: vec![right_on],
            how,
        };
        // A string trap pair in over half the cases (Fig. 5's point:
        // overlap alone is not a reliable signal).
        if self.rng.random_bool(0.55) {
            self.plant_code_trap(&mut case);
        }
        case
    }

    /// Pick `n` distinct strings from a pool.
    fn pick_distinct(&mut self, pool: &[&str], n: usize) -> Vec<String> {
        assert!(n <= pool.len());
        let mut chosen: Vec<&str> = Vec::with_capacity(n);
        while chosen.len() < n {
            let Some(c) = pool.choose(&mut self.rng) else { break };
            if !chosen.contains(c) {
                chosen.push(c);
            }
        }
        chosen.into_iter().map(str::to_string).collect()
    }

    /// Key column name pool.
    fn key_name(&mut self) -> String {
        ["ticker", "customer_id", "device", "symbol", "entity_key"]
            [self.rng.random_range(0..5)]
        .to_string()
    }
}

/// Mutable access to a column's values (generator-internal).
fn df_column_mut(df: &mut DataFrame, idx: usize) -> &mut Vec<Value> {
    // DataFrame keeps columns private; rebuild in place via the public API
    // would clone, so we go through a small internal helper instead.
    df.column_at_mut(idx).values_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::DType;

    #[test]
    fn entities_have_fd_structure() {
        let mut g = TableGenerator::with_seed(1);
        let es = g.entities(20);
        assert_eq!(es.len(), 20);
        let ids: std::collections::HashSet<_> = es.iter().map(|e| &e.id).collect();
        assert_eq!(ids.len(), 20, "entity ids must be unique");
    }

    #[test]
    fn fact_table_layout() {
        let mut g = TableGenerator::with_seed(2);
        let es = g.entities(10);
        let t = g.fact_table(&es);
        // Every dim and measure resolves to a real column.
        let names = t.df.column_names();
        for c in t.meta.dim_cols.iter().chain(&t.meta.measure_cols) {
            assert!(names.iter().any(|n| n == c), "missing column {c}");
        }
        // Measures are numeric (float, integer units, or ratings); the
        // year dim is int.
        for m in &t.meta.measure_cols {
            assert!(t.df.column(m).unwrap().dtype().is_numeric());
        }
        assert_eq!(t.df.column("year").unwrap().dtype(), DType::Int);
        assert!(t.df.num_rows() >= 10);
    }

    #[test]
    fn measures_lean_right_but_interleaving_occurs() {
        let mut g = TableGenerator::with_seed(17);
        let mut mean_dim_pos = 0.0;
        let mut mean_measure_pos = 0.0;
        let mut interleaved = 0;
        let trials = 40;
        for _ in 0..trials {
            let es = g.entities(6);
            let t = g.fact_table(&es);
            let names = t.df.column_names();
            let pos = |c: &String| names.iter().position(|n| n == c).unwrap() as f64;
            let dp: f64 =
                t.meta.dim_cols.iter().map(&pos).sum::<f64>() / t.meta.dim_cols.len() as f64;
            let mp: f64 = t.meta.measure_cols.iter().map(&pos).sum::<f64>()
                / t.meta.measure_cols.len() as f64;
            mean_dim_pos += dp;
            mean_measure_pos += mp;
            let strictly_ordered = t.meta.measure_cols.iter().all(|m| {
                t.meta.dim_cols.iter().all(|d| pos(d) < pos(m))
            });
            if !strictly_ordered {
                interleaved += 1;
            }
        }
        // Measures sit to the right on average (the left-ness signal)...
        assert!(mean_measure_pos > mean_dim_pos);
        // ...but a healthy fraction of tables interleave (position is not
        // an oracle).
        assert!(interleaved >= trials / 5, "only {interleaved} interleaved");
    }

    #[test]
    fn dimension_table_key_is_unique() {
        let mut g = TableGenerator::with_seed(3);
        let es = g.entities(15);
        let d = g.dimension_table(&es, "Model");
        let key = d.df.column("Model").unwrap();
        assert_eq!(key.distinct_count(), 15);
        assert_eq!(d.meta.key_cols, vec!["Model".to_string()]);
    }

    #[test]
    fn wide_pivot_table_has_homogeneous_block() {
        let mut g = TableGenerator::with_seed(4);
        let t = g.wide_pivot_table(8);
        assert_eq!(t.meta.collapse_cols.len(), 8);
        for c in &t.meta.collapse_cols {
            assert_eq!(t.df.column(c).unwrap().dtype(), DType::Float);
        }
        // Every id column precedes the block; a "total" trap, if present,
        // follows it.
        let names = t.df.column_names();
        let first_block = names
            .iter()
            .position(|n| t.meta.collapse_cols.contains(&n.to_string()))
            .unwrap();
        for d in &t.meta.dim_cols {
            let pos = names.iter().position(|n| n == d).unwrap();
            if d == "total" {
                assert!(pos > first_block);
            } else {
                assert!(pos < first_block, "id column {d} must precede the block");
            }
        }
    }

    #[test]
    fn wide_pivot_traps_appear_at_configured_rates() {
        let mut g = TableGenerator::with_seed(14);
        let mut with_total = 0;
        let mut with_numeric_id = 0;
        for _ in 0..60 {
            let t = g.wide_pivot_table(6);
            if t.meta.dim_cols.iter().any(|d| d == "total") {
                with_total += 1;
                // The total column is never part of the collapse block.
                assert!(!t.meta.collapse_cols.contains(&"total".to_string()));
            }
            if t.meta.dim_cols.iter().any(|d| d == "account_id") {
                with_numeric_id += 1;
            }
        }
        assert!(with_total > 8, "totals {with_total}");
        assert!(with_numeric_id > 12, "numeric ids {with_numeric_id}");
    }

    #[test]
    fn adhoc_dimension_tables_can_have_duplicate_keys() {
        let mut g = TableGenerator::with_seed(15);
        let es = g.entities(30);
        let d = g.dimension_table_with_dups(&es, "id", true);
        let key = d.df.column("id").unwrap();
        assert!(key.distinct_count() < d.df.num_rows(), "expected duplicated keys");
    }

    #[test]
    fn join_pair_ground_truth_is_joinable() {
        let mut g = TableGenerator::with_seed(5);
        for _ in 0..10 {
            let case = g.join_pair();
            let l = case.left.df.column(&case.left_on[0]).unwrap();
            let r = case.right.df.column(&case.right_on[0]).unwrap();
            let lset = l.distinct_set();
            let rset = r.distinct_set();
            let overlap = lset.intersection(&rset).count();
            assert!(overlap > 0, "planted join must have overlapping keys");
        }
    }

    #[test]
    fn join_type_distribution_is_mostly_inner() {
        let mut g = TableGenerator::with_seed(6);
        let mut inner = 0;
        let total = 300;
        for _ in 0..total {
            if g.join_pair().how == JoinType::Inner {
                inner += 1;
            }
        }
        let frac = inner as f64 / total as f64;
        assert!((0.60..=0.92).contains(&frac), "inner fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TableGenerator::with_seed(9);
        let mut b = TableGenerator::with_seed(9);
        let ea = a.entities(5);
        let eb = b.entities(5);
        let ta = a.fact_table(&ea);
        let tb = b.fact_table(&eb);
        assert_eq!(ta.df.content_hash(), tb.df.content_hash());
    }
}
