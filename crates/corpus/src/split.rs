//! Leakage-safe train/test splitting (§6.1).
//!
//! "We split the data 80%:20% into train and test, while making sure that
//! examples involving the same files/data-sets are either all in train or
//! all in test to avoid data leakage." Each notebook carries a
//! `dataset_group`; the split hashes the *group*, so everything derived
//! from the same files lands on the same side.

use std::hash::{Hash, Hasher};

/// Index sets of a grouped split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitSets {
    pub train: Vec<usize>,
    pub test: Vec<usize>,
}

/// Split items `(1 - test_frac) : test_frac` by hashing each item's group
/// key.
/// Deterministic in `seed`; items sharing a group always land together.
pub fn grouped_split<T, F>(items: &[T], group_of: F, test_frac: f64, seed: u64) -> SplitSets
where
    F: Fn(&T) -> &str,
{
    assert!((0.0..=1.0).contains(&test_frac));
    let mut train = Vec::new();
    let mut test = Vec::new();
    let threshold = (test_frac * u64::MAX as f64) as u64;
    for (i, item) in items.iter().enumerate() {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        group_of(item).hash(&mut h);
        if h.finish() < threshold {
            test.push(i);
        } else {
            train.push(i);
        }
    }
    SplitSets { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_stay_together() {
        let items: Vec<(String, usize)> = (0..300)
            .map(|i| (format!("group-{}", i / 3), i))
            .collect();
        let split = grouped_split(&items, |x| x.0.as_str(), 0.2, 9);
        for idx in &split.test {
            let g = &items[*idx].0;
            // No member of this group may be in train.
            for t in &split.train {
                assert_ne!(&items[*t].0, g, "group {g} leaked across the split");
            }
        }
    }

    #[test]
    fn fraction_is_approximately_respected() {
        let items: Vec<String> = (0..2000).map(|i| format!("g{i}")).collect();
        let split = grouped_split(&items, |s| s.as_str(), 0.2, 1);
        let frac = split.test.len() as f64 / items.len() as f64;
        assert!((0.15..=0.25).contains(&frac), "test fraction {frac}");
        assert_eq!(split.test.len() + split.train.len(), items.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let items: Vec<String> = (0..100).map(|i| format!("g{i}")).collect();
        let a = grouped_split(&items, |s| s.as_str(), 0.2, 5);
        let b = grouped_split(&items, |s| s.as_str(), 0.2, 5);
        assert_eq!(a, b);
        let c = grouped_split(&items, |s| s.as_str(), 0.2, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn extreme_fractions() {
        let items: Vec<String> = (0..50).map(|i| format!("g{i}")).collect();
        assert!(grouped_split(&items, |s| s.as_str(), 0.0, 1).test.is_empty());
        assert!(grouped_split(&items, |s| s.as_str(), 1.0, 1).train.is_empty());
    }
}
