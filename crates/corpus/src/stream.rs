//! Bounded-memory streamed corpus replay (generate → replay → spill,
//! shard by shard), the scale path behind `repro --corpus-scale`.
//!
//! The in-memory pipeline materialises the whole corpus and all replay
//! reports at once, so RSS grows linearly with corpus size. Streaming
//! exploits two structural facts:
//!
//! 1. **Notebooks are pure functions of their jobs.** Every notebook is
//!    derived solely from `(corpus seed, archetype, ordinal)` (see
//!    `nbgen::derive_seed`), so any contiguous sharding of the canonical
//!    job list, generated independently, concatenates back to the full
//!    corpus exactly.
//! 2. **Replay is per-notebook.** `replay_corpus` rounds act on notebooks
//!    independently and its [`RobustnessStats`] are purely additive, so
//!    replaying disjoint shards and merging stats in shard order equals
//!    one full-corpus sweep. A shard's dataset-repository delta contains
//!    every file/URL its notebooks can reference (basenames embed the
//!    notebook serial), so shard-scoped repair behaves identically too.
//!
//! Each replayed shard is spilled to a [`SampleStore`] and dropped from
//! memory; the manifest of completed shards makes a killed run resumable
//! from where it stopped, gated on a [`corpus_id`] so a store built for a
//! different configuration is never resumed into. Equivalence with the
//! in-memory path is pinned by `tests/streamed_replay_equivalence.rs`.

use crate::faults::{FaultSpec, RobustnessStats};
use crate::nbgen::{corpus_jobs, generate_jobs, CorpusConfig};
use crate::replay::{ReplayConfig, ReplayEngine};
use crate::store::SampleStore;
use autosuggest_obs as obs;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

/// Streamed-replay knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Notebook-generation jobs per shard. Peak RSS is proportional to
    /// this, not to corpus size.
    pub shard_size: usize,
    /// Stop (successfully) after replaying this many *new* shards —
    /// simulates a killed run for resume tests and the CI smoke job.
    pub abort_after_shards: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { shard_size: 256, abort_after_shards: None }
    }
}

/// What a streamed replay did.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Merged robustness accounting across all completed shards,
    /// identical to what one full in-memory `replay_corpus` would return.
    pub stats: RobustnessStats,
    pub total_shards: usize,
    /// Shards replayed by this run.
    pub shards_replayed: usize,
    /// Shards reused from the manifest (already complete on open).
    pub shards_resumed: usize,
    /// Reports across all completed shards.
    pub notebooks: usize,
    /// Invocation records across all completed shards.
    pub invocations: usize,
    /// True when `abort_after_shards` stopped the run early.
    pub aborted: bool,
}

/// Content-addressed identity of a streamed corpus: configuration, fault
/// spec, and replay budgets all feed the id, so a store written under any
/// different setting fails the resume gate and is rebuilt — the same
/// compatibility-gating idea as `RetrainPlanner`'s corpus-id check.
pub fn corpus_id(cfg: &CorpusConfig, faults: Option<&FaultSpec>) -> String {
    let descriptor = format!(
        "{cfg:?}|faults={}|replay={:?}",
        faults.map(|f| f.render()).unwrap_or_default(),
        ReplayConfig::default(),
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in descriptor.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Generate and replay `cfg`'s corpus shard by shard, spilling each shard's
/// reports into a [`SampleStore`] under `root`. Shards already present in a
/// compatible manifest are skipped (their stats are read back from disk);
/// everything else is generated, replayed, written, and dropped — memory
/// holds at most one shard of notebooks and reports at a time.
pub fn replay_corpus_streamed(
    cfg: &CorpusConfig,
    faults: Option<FaultSpec>,
    root: impl Into<PathBuf>,
    opts: &StreamConfig,
) -> io::Result<(SampleStore, StreamSummary)> {
    let _span = obs::span("replay_streamed");
    let shard_size = opts.shard_size.max(1);
    let jobs = corpus_jobs(cfg);
    let total_shards = jobs.chunks(shard_size).count();
    let id = corpus_id(cfg, faults.as_ref());
    let mut store = SampleStore::open(root, &id, shard_size, total_shards)?;

    let mut summary = StreamSummary {
        stats: RobustnessStats::default(),
        total_shards,
        shards_replayed: 0,
        shards_resumed: 0,
        notebooks: 0,
        invocations: 0,
        aborted: false,
    };

    for (shard_id, chunk) in jobs.chunks(shard_size).enumerate() {
        if store.is_complete(shard_id) {
            let stats = store.read_shard_stats(shard_id)?;
            summary.stats.merge_from(&stats);
            if let Some(meta) = store.shard_meta(shard_id) {
                summary.notebooks += meta.notebooks;
                summary.invocations += meta.invocations;
            }
            summary.shards_resumed += 1;
            continue;
        }
        if let Some(limit) = opts.abort_after_shards {
            if summary.shards_replayed >= limit {
                summary.aborted = true;
                break;
            }
        }
        let generated = generate_jobs(cfg, chunk);
        let engine = ReplayEngine::new(generated.repository).with_faults(faults.clone());
        let (reports, stats) = engine.replay_corpus(&generated.notebooks);
        store.write_shard(shard_id, &reports, &stats)?;
        summary.stats.merge_from(&stats);
        summary.notebooks += reports.len();
        summary.invocations += reports.iter().map(|r| r.invocations.len()).sum::<usize>();
        summary.shards_replayed += 1;
    }

    obs::counter_add("stream.shards_replayed", summary.shards_replayed as u64);
    obs::counter_add("stream.notebooks", summary.notebooks as u64);
    Ok((store, summary))
}

/// Per-scenario (notebook archetype) replay accounting, streamed out of a
/// store one shard at a time — the wrangling-benchmark-style slice view
/// (accuracy should be reported per scenario, not only as corpus means).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    pub notebooks: usize,
    pub replayed_ok: usize,
    pub invocations: usize,
    pub cells_executed: usize,
    pub cell_retries: usize,
}

/// Scan every stored report and bucket counts by scenario, where the
/// scenario is the archetype embedded in the notebook id
/// (`nb-<scenario>-<serial>`). Streaming: holds one shard at a time.
pub fn scan_scenario_stats(store: &SampleStore) -> io::Result<BTreeMap<String, ScenarioStats>> {
    let mut out: BTreeMap<String, ScenarioStats> = BTreeMap::new();
    for report in store.reports() {
        let report = report?;
        let scenario = scenario_of(&report.notebook_id);
        let slot = out.entry(scenario).or_default();
        slot.notebooks += 1;
        if matches!(report.outcome, crate::replay::ReplayOutcome::Success) {
            slot.replayed_ok += 1;
        }
        slot.invocations += report.invocations.len();
        slot.cells_executed += report.cells_executed;
        slot.cell_retries += report.cell_retries;
    }
    Ok(out)
}

/// `nb-<scenario>-<serial>` → `<scenario>` (anything unparseable buckets
/// under "other").
fn scenario_of(notebook_id: &str) -> String {
    let parts: Vec<&str> = notebook_id.split('-').collect();
    if parts.len() >= 3 && parts[0] == "nb" {
        parts[1..parts.len() - 1].join("-")
    } else {
        "other".to_string()
    }
}

/// Render scenario stats as a deterministic fixed-order text table — the
/// output `repro --corpus-scale` prints to stdout and CI byte-diffs across
/// thread counts and resume boundaries.
pub fn render_scenario_stats(stats: &BTreeMap<String, ScenarioStats>) -> String {
    let mut out = String::from(
        "scenario       notebooks  replayed_ok  invocations  cells_executed  cell_retries\n",
    );
    for (scenario, s) in stats {
        out.push_str(&format!(
            "{:<14} {:>9}  {:>11}  {:>11}  {:>14}  {:>12}\n",
            scenario, s.notebooks, s.replayed_ok, s.invocations, s.cells_executed, s.cell_retries,
        ));
    }
    let totals = stats.values().fold(ScenarioStats::default(), |mut acc, s| {
        acc.notebooks += s.notebooks;
        acc.replayed_ok += s.replayed_ok;
        acc.invocations += s.invocations;
        acc.cells_executed += s.cells_executed;
        acc.cell_retries += s.cell_retries;
        acc
    });
    out.push_str(&format!(
        "{:<14} {:>9}  {:>11}  {:>11}  {:>14}  {:>12}\n",
        "total",
        totals.notebooks,
        totals.replayed_ok,
        totals.invocations,
        totals.cells_executed,
        totals.cell_retries,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_id_is_sensitive_to_config_and_faults() {
        let a = CorpusConfig::small(1);
        let b = CorpusConfig::small(2);
        assert_ne!(corpus_id(&a, None), corpus_id(&b, None));
        let spec = FaultSpec::parse("seed=1;io=0.5").ok();
        assert_ne!(corpus_id(&a, None), corpus_id(&a, spec.as_ref()));
        assert_eq!(corpus_id(&a, None), corpus_id(&a, None));
    }

    #[test]
    fn scenario_parsing_extracts_archetype() {
        assert_eq!(scenario_of("nb-join-00012"), "join");
        assert_eq!(scenario_of("nb-groupby-00001"), "groupby");
        assert_eq!(scenario_of("weird"), "other");
    }
}
