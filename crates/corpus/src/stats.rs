//! Corpus statistics: the numbers behind Tables 1, 2, and 10.

use crate::flowgraph::OpKind;
use crate::replay::{OpInvocation, ReplayOutcome, ReplayReport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-operator corpus counts (one row of Table 2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OperatorCounts {
    /// Notebooks generated whose *primary* operator is this one (the
    /// analogue of "#nb sampled" — crawl sampling happens upstream).
    pub notebooks_sampled: usize,
    /// Notebooks that replayed successfully and invoked the operator.
    pub notebooks_replayed: usize,
    /// Operator invocations captured across all successful replays.
    pub operators_replayed: usize,
    /// Invocations surviving dedup/trivia filtering.
    pub operators_post_filter: usize,
}

/// Aggregated corpus statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    pub notebooks_total: usize,
    pub notebooks_replayed: usize,
    pub failures_missing_file: usize,
    pub failures_missing_package: usize,
    pub failures_timeout: usize,
    pub failures_execution: usize,
    pub failures_panic: usize,
    pub per_operator: HashMap<OpKind, OperatorCounts>,
}

/// Compute corpus statistics from replay reports and the filtered
/// invocation set.
pub fn corpus_stats(reports: &[ReplayReport], filtered: &[OpInvocation]) -> CorpusStats {
    let mut stats = CorpusStats { notebooks_total: reports.len(), ..Default::default() };
    for r in reports {
        match &r.outcome {
            ReplayOutcome::Success => stats.notebooks_replayed += 1,
            ReplayOutcome::MissingFile(_) => stats.failures_missing_file += 1,
            ReplayOutcome::MissingPackage(_) => stats.failures_missing_package += 1,
            ReplayOutcome::Timeout => stats.failures_timeout += 1,
            ReplayOutcome::ExecutionError(_) => stats.failures_execution += 1,
            ReplayOutcome::OperatorPanic(_) => stats.failures_panic += 1,
        }
        let mut seen_ops: Vec<OpKind> = Vec::new();
        for inv in &r.invocations {
            let slot = stats.per_operator.entry(inv.op).or_default();
            slot.operators_replayed += 1;
            if !seen_ops.contains(&inv.op) {
                seen_ops.push(inv.op);
                slot.notebooks_replayed += 1;
            }
        }
    }
    for inv in filtered {
        stats
            .per_operator
            .entry(inv.op)
            .or_default()
            .operators_post_filter += 1;
    }
    stats
}

/// Operator distribution over data-flow sequences (Table 10): the fraction
/// of sequence-vocabulary invocations belonging to each operator.
pub fn operator_distribution(reports: &[ReplayReport]) -> Vec<(OpKind, f64)> {
    let mut counts: HashMap<OpKind, usize> = HashMap::new();
    let mut total = 0usize;
    for r in reports {
        for op in r.flow.op_sequence() {
            *counts.entry(op).or_insert(0) += 1;
            total += 1;
        }
    }
    let mut out: Vec<(OpKind, f64)> = OpKind::SEQUENCE_OPS
        .iter()
        .map(|&op| {
            (
                op,
                counts.get(&op).copied().unwrap_or(0) as f64 / total.max(1) as f64,
            )
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowgraph::FlowGraph;

    fn report(outcome: ReplayOutcome, ops: &[OpKind]) -> ReplayReport {
        let mut flow = FlowGraph::new();
        for (i, &op) in ops.iter().enumerate() {
            flow.record(op, vec![i as u64], i as u64 + 100);
        }
        ReplayReport {
            notebook_id: "n".into(),
            dataset_group: "g".into(),
            outcome,
            cells_executed: ops.len(),
            invocations: vec![],
            flow,
            packages_installed: vec![],
            files_recovered: vec![],
            cell_retries: 0,
            injected_faults: vec![],
        }
    }

    #[test]
    fn outcome_counting() {
        let reports = vec![
            report(ReplayOutcome::Success, &[OpKind::Merge]),
            report(ReplayOutcome::MissingFile("x".into()), &[]),
            report(ReplayOutcome::MissingPackage("p".into()), &[]),
        ];
        let stats = corpus_stats(&reports, &[]);
        assert_eq!(stats.notebooks_total, 3);
        assert_eq!(stats.notebooks_replayed, 1);
        assert_eq!(stats.failures_missing_file, 1);
        assert_eq!(stats.failures_missing_package, 1);
    }

    #[test]
    fn distribution_sums_to_one_and_sorts() {
        let reports = vec![
            report(ReplayOutcome::Success, &[OpKind::GroupBy, OpKind::GroupBy, OpKind::Merge]),
            report(ReplayOutcome::Success, &[OpKind::Merge, OpKind::Concat]),
        ];
        let dist = operator_distribution(&reports);
        let total: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(dist[0].0, OpKind::GroupBy);
        assert!((dist[0].1 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_reports_are_safe() {
        let dist = operator_distribution(&[]);
        assert_eq!(dist.len(), 7);
        assert!(dist.iter().all(|(_, f)| *f == 0.0));
    }
}
