//! Deterministic fault injection and robustness accounting.
//!
//! The paper's pipeline earns its training data by surviving millions of
//! broken notebooks; this module lets us *manufacture* that breakage on
//! demand, reproducibly, so the recovery machinery (typed errors, retry,
//! quarantine) is exercised in tests and CI rather than trusted on faith.
//!
//! A [`FaultSpec`] seeds failures into cell execution as a pure function of
//! `(spec seed, notebook id, cell index, retry salt)` — never of wall
//! clock, thread id, or scheduling — so an injected-fault run is
//! bit-identical at any `AUTOSUGGEST_THREADS`.
//!
//! ## Spec grammar (`AUTOSUGGEST_FAULTS`)
//!
//! Comma- or semicolon-separated `key=value` pairs:
//!
//! ```text
//! AUTOSUGGEST_FAULTS="panic=0.05,io=0.04,timeout=0.03,seed=7,transient=0.5"
//! ```
//!
//! * `panic | io | timeout | package | schema` — per-kind injection rate
//!   in `[0, 1]`, evaluated per cell (rates are cumulative; their sum is
//!   the fraction of cells that fault).
//! * `seed` — the injection RNG seed (default 0).
//! * `transient` — probability an injected fault clears on retry
//!   (default 0.5). Transient faults vanish on any later attempt or
//!   round, exercising the recovery path; persistent ones keep firing,
//!   exercising quarantine.

use crate::error::ReplayErrorKind;
use autosuggest_obs as obs;
use serde::{Deserialize, Serialize};

/// What kind of failure to inject into a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// `panic!` mid-cell — exercises `catch_unwind` isolation.
    Panic,
    /// An unresolvable file path — exercises path repair and quarantine.
    Io,
    /// Immediate budget exhaustion — exercises the timeout path.
    Timeout,
    /// An import of a package outside the registry — permanent failure.
    Package,
    /// An operator-level schema error — permanent failure.
    Schema,
}

impl FaultKind {
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Panic,
        FaultKind::Io,
        FaultKind::Timeout,
        FaultKind::Package,
        FaultKind::Schema,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Timeout => "timeout",
            FaultKind::Package => "package",
            FaultKind::Schema => "schema",
        }
    }

    fn from_key(key: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.as_str() == key)
    }

    /// The error kind this fault surfaces as.
    pub fn error_kind(&self) -> ReplayErrorKind {
        match self {
            FaultKind::Panic => ReplayErrorKind::OperatorPanic,
            FaultKind::Io => ReplayErrorKind::IoPath,
            FaultKind::Timeout => ReplayErrorKind::Timeout,
            FaultKind::Package => ReplayErrorKind::MissingPackage,
            FaultKind::Schema => ReplayErrorKind::SchemaMismatch,
        }
    }
}

/// A parsed, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    pub seed: u64,
    /// `(kind, rate)` in canonical [`FaultKind::ALL`] order; absent kinds
    /// have rate 0.
    pub rates: Vec<(FaultKind, f64)>,
    /// Probability an injected fault is transient (clears on retry).
    pub transient: f64,
}

impl FaultSpec {
    /// Parse the `AUTOSUGGEST_FAULTS` grammar (see module docs).
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut seed = 0u64;
        let mut transient = 0.5f64;
        let mut rates: Vec<(FaultKind, f64)> = Vec::new();
        for pair in spec.split([',', ';']).map(str::trim).filter(|p| !p.is_empty()) {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!("fault spec entry {pair:?} is not key=value"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|_| format!("seed {value:?} is not an integer"))?;
                }
                "transient" => {
                    transient = parse_rate(key, value)?;
                }
                _ => {
                    let Some(kind) = FaultKind::from_key(key) else {
                        return Err(format!(
                            "unknown fault key {key:?} (expected seed, transient, or one of panic/io/timeout/package/schema)"
                        ));
                    };
                    let rate = parse_rate(key, value)?;
                    if let Some(slot) = rates.iter_mut().find(|(k, _)| *k == kind) {
                        slot.1 = rate;
                    } else {
                        rates.push((kind, rate));
                    }
                }
            }
        }
        // Canonical order so `render` and the decision cascade are stable
        // regardless of how the spec was written.
        rates.sort_by_key(|(k, _)| FaultKind::ALL.iter().position(|a| a == k));
        let total: f64 = rates.iter().map(|(_, r)| r).sum();
        if total > 1.0 {
            return Err(format!("fault rates sum to {total:.3} > 1.0"));
        }
        Ok(FaultSpec { seed, rates, transient })
    }

    /// Read and parse `AUTOSUGGEST_FAULTS`. Unset → `None`; a malformed
    /// spec is an operator error worth failing loudly over, so it panics
    /// with the parse message rather than silently running fault-free.
    pub fn from_env() -> Option<FaultSpec> {
        let raw = std::env::var("AUTOSUGGEST_FAULTS").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return None;
        }
        match FaultSpec::parse(trimmed) {
            Ok(spec) => Some(spec),
            Err(e) => panic!("invalid AUTOSUGGEST_FAULTS={raw:?}: {e}"),
        }
    }

    /// Canonical textual form (stable across parse order).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .rates
            .iter()
            .filter(|(_, r)| *r > 0.0)
            .map(|(k, r)| format!("{}={r}", k.as_str()))
            .collect();
        parts.push(format!("seed={}", self.seed));
        parts.push(format!("transient={}", self.transient));
        parts.join(",")
    }

    /// Total per-cell injection probability.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().map(|(_, r)| r).sum()
    }

    /// Decide whether executing `(notebook, cell)` faults on this attempt.
    ///
    /// The *targeting* roll ignores `round`/`attempt`, so whether a cell is
    /// fault-prone is a stable property of the cell; the *transience* roll
    /// decides whether the fault clears once any retry (cell-level
    /// `attempt` or notebook-level `round`) happens. Pure function of its
    /// arguments — the determinism contract depends on it.
    pub fn fault_for(
        &self,
        notebook_id: &str,
        cell_index: usize,
        round: usize,
        attempt: usize,
    ) -> Option<FaultKind> {
        let target = unit_roll(self.seed, notebook_id, cell_index as u64, 0);
        let mut cumulative = 0.0;
        let mut chosen = None;
        for (kind, rate) in &self.rates {
            cumulative += rate;
            if target < cumulative {
                chosen = Some(*kind);
                break;
            }
        }
        let kind = chosen?;
        let is_transient = unit_roll(self.seed, notebook_id, cell_index as u64, 1) < self.transient;
        if is_transient && (round > 0 || attempt > 0) {
            return None; // transient fault cleared by the retry
        }
        Some(kind)
    }
}

fn parse_rate(key: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| format!("{key} rate {value:?} is not a number"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("{key} rate {rate} outside [0, 1]"));
    }
    Ok(rate)
}

/// splitmix64 — the same stable mixer the corpus generator uses for
/// per-notebook seed derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash `(seed, name, a, b)` into a uniform f64 in `[0, 1)`.
fn unit_roll(seed: u64, name: &str, a: u64, b: u64) -> f64 {
    let mut h = splitmix64(seed ^ 0xD6E8_FEB8_6659_FD93);
    for byte in name.bytes() {
        h = splitmix64(h ^ u64::from(byte));
    }
    h = splitmix64(h ^ a.wrapping_mul(0x2545_F491_4F6C_DD1D));
    h = splitmix64(h ^ b);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-error-kind robustness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCounters {
    /// Fault events injected (all rounds and attempts).
    pub injected: usize,
    /// Notebooks whose replay ended a round failed with this kind.
    pub failures: usize,
    /// Notebook-level retry attempts performed for this kind.
    pub retries: usize,
    /// Notebooks that failed with this kind, then succeeded on retry.
    pub recovered: usize,
    /// Notebooks still failing with this kind after the final round.
    pub quarantined: usize,
}

/// Aggregate robustness accounting for one corpus replay — the counters
/// `repro --timing` surfaces into `BENCH_repro.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Canonical fault spec, when injection was active.
    pub fault_spec: Option<String>,
    pub notebooks: usize,
    /// Notebooks that failed the first replay pass (any kind).
    pub failed_first_pass: usize,
    /// Notebooks that entered quarantine and were retried at least once.
    pub retried_notebooks: usize,
    /// Retried notebooks that eventually replayed successfully.
    pub recovered_notebooks: usize,
    /// Notebooks still failing a retryable kind after the final round.
    pub quarantined_notebooks: usize,
    /// Cell-level retry attempts across all reports (package installs,
    /// file recoveries, panic retries).
    pub cell_retries: usize,
    pub io_path: KindCounters,
    pub missing_package: KindCounters,
    pub schema_mismatch: KindCounters,
    pub operator_panic: KindCounters,
    pub timeout: KindCounters,
}

impl RobustnessStats {
    pub fn kind(&self, kind: ReplayErrorKind) -> &KindCounters {
        match kind {
            ReplayErrorKind::IoPath => &self.io_path,
            ReplayErrorKind::MissingPackage => &self.missing_package,
            ReplayErrorKind::SchemaMismatch => &self.schema_mismatch,
            ReplayErrorKind::OperatorPanic => &self.operator_panic,
            ReplayErrorKind::Timeout => &self.timeout,
        }
    }

    pub fn kind_mut(&mut self, kind: ReplayErrorKind) -> &mut KindCounters {
        match kind {
            ReplayErrorKind::IoPath => &mut self.io_path,
            ReplayErrorKind::MissingPackage => &mut self.missing_package,
            ReplayErrorKind::SchemaMismatch => &mut self.schema_mismatch,
            ReplayErrorKind::OperatorPanic => &mut self.operator_panic,
            ReplayErrorKind::Timeout => &mut self.timeout,
        }
    }

    /// Total injected fault events across kinds.
    pub fn total_injected(&self) -> usize {
        ReplayErrorKind::ALL.iter().map(|&k| self.kind(k).injected).sum()
    }

    /// Fold another replay's accounting into this one. Every counter is
    /// additive, so merging per-shard stats in shard order reproduces the
    /// single full-corpus sweep exactly; `fault_spec` keeps the first
    /// non-`None` spec seen (all shards of one run share a spec).
    pub fn merge_from(&mut self, other: &RobustnessStats) {
        if self.fault_spec.is_none() {
            self.fault_spec = other.fault_spec.clone();
        }
        self.notebooks += other.notebooks;
        self.failed_first_pass += other.failed_first_pass;
        self.retried_notebooks += other.retried_notebooks;
        self.recovered_notebooks += other.recovered_notebooks;
        self.quarantined_notebooks += other.quarantined_notebooks;
        self.cell_retries += other.cell_retries;
        for kind in ReplayErrorKind::ALL {
            let src = *other.kind(kind);
            let dst = self.kind_mut(kind);
            dst.injected += src.injected;
            dst.failures += src.failures;
            dst.retries += src.retries;
            dst.recovered += src.recovered;
            dst.quarantined += src.quarantined;
        }
    }

    /// Fold these stats into the active obs registry under
    /// `replay.faults.{kind}.{field}` (nonzero fields only, so clean
    /// runs stay noise-free) plus the notebook-level totals. Called once
    /// per `replay_corpus` sweep, after all rounds complete, so the
    /// counters are a pure function of the workload and fault spec.
    pub fn record_obs(&self) {
        obs::counter_add("replay.notebooks", self.notebooks as u64);
        let totals: [(&str, usize); 5] = [
            ("replay.failed_first_pass", self.failed_first_pass),
            ("replay.retried_notebooks", self.retried_notebooks),
            ("replay.recovered_notebooks", self.recovered_notebooks),
            ("replay.quarantined_notebooks", self.quarantined_notebooks),
            ("replay.cell_retries", self.cell_retries),
        ];
        for (name, v) in totals {
            if v > 0 {
                obs::counter_add(name, v as u64);
            }
        }
        for &kind in &ReplayErrorKind::ALL {
            let c = self.kind(kind);
            let fields: [(&str, usize); 5] = [
                ("injected", c.injected),
                ("failures", c.failures),
                ("retries", c.retries),
                ("recovered", c.recovered),
                ("quarantined", c.quarantined),
            ];
            for (field, v) in fields {
                if v > 0 {
                    obs::counter_add(
                        &format!("replay.faults.{}.{field}", kind.as_str()),
                        v as u64,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_canonicalises() {
        let spec = FaultSpec::parse("io=0.1, panic = 0.05; seed=9,transient=0.25").unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.transient, 0.25);
        assert_eq!(
            spec.rates,
            vec![(FaultKind::Panic, 0.05), (FaultKind::Io, 0.1)],
            "rates are sorted into canonical kind order"
        );
        assert_eq!(spec.render(), "panic=0.05,io=0.1,seed=9,transient=0.25");
        assert!((spec.total_rate() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultSpec::parse("bogus=0.1").is_err());
        assert!(FaultSpec::parse("panic").is_err());
        assert!(FaultSpec::parse("panic=2.0").is_err());
        assert!(FaultSpec::parse("panic=0.7,io=0.7").is_err());
        assert!(FaultSpec::parse("seed=x").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let spec = FaultSpec::parse("panic=0.1,io=0.1,timeout=0.1,seed=3").unwrap();
        let mut hits = 0usize;
        let n = 4000usize;
        for i in 0..n {
            let nb = format!("nb-{i:05}");
            let a = spec.fault_for(&nb, i % 7, 0, 0);
            let b = spec.fault_for(&nb, i % 7, 0, 0);
            assert_eq!(a, b, "same inputs must give the same decision");
            if a.is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "empirical rate {rate} far from 0.3");
    }

    #[test]
    fn transient_faults_clear_on_retry_and_persistent_ones_do_not() {
        let spec = FaultSpec::parse("timeout=0.5,seed=1,transient=0.5").unwrap();
        let mut saw_transient = false;
        let mut saw_persistent = false;
        for i in 0..200 {
            let nb = format!("nb-{i:03}");
            if spec.fault_for(&nb, 0, 0, 0).is_some() {
                let retried = spec.fault_for(&nb, 0, 1, 0);
                let attempted = spec.fault_for(&nb, 0, 0, 1);
                assert_eq!(retried, attempted, "round and attempt salts agree");
                if retried.is_none() {
                    saw_transient = true;
                } else {
                    saw_persistent = true;
                }
            }
        }
        assert!(saw_transient && saw_persistent);
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultSpec::parse("io=0.2,seed=1").unwrap();
        let b = FaultSpec::parse("io=0.2,seed=2").unwrap();
        let differs = (0..200).any(|i| {
            let nb = format!("nb-{i:03}");
            a.fault_for(&nb, 0, 0, 0) != b.fault_for(&nb, 0, 0, 0)
        });
        assert!(differs);
    }

    #[test]
    fn stats_kind_accessors_cover_all_kinds() {
        let mut stats = RobustnessStats::default();
        for (i, &k) in ReplayErrorKind::ALL.iter().enumerate() {
            stats.kind_mut(k).injected = i + 1;
        }
        for (i, &k) in ReplayErrorKind::ALL.iter().enumerate() {
            assert_eq!(stats.kind(k).injected, i + 1);
        }
        assert_eq!(stats.total_injected(), 1 + 2 + 3 + 4 + 5);
    }
}
