//! Notebook corpus, replay engine, and data-flow extraction.
//!
//! §3 of the paper crawls 4.7M GitHub notebooks, replays them step-by-step
//! with dynamic instrumentation, repairs missing data files and packages,
//! and logs full input/output tables plus every parameter of each operator
//! call. GitHub-scale crawling is not reproducible offline, so this crate
//! substitutes a **synthetic notebook corpus** whose generator plants the
//! same ground-truth structure the paper observes in the wild (see
//! DESIGN.md §1), and an in-process **replay engine** that mirrors the
//! paper's §3.2 pipeline: execute cells, parse failure messages, resolve
//! missing files by basename search / URL hints / a Kaggle-style dataset
//! API, install missing packages, re-execute, and instrument every operator
//! invocation.
//!
//! The result of replay is a stream of [`replay::OpInvocation`] records and
//! per-notebook [`flowgraph::FlowGraph`]s — the "click-through log"
//! equivalent every predictor trains on.
//!
//! Failures are first-class citizens: [`error::ReplayError`] classifies
//! them, [`faults::FaultSpec`] injects them deterministically, and
//! [`replay::ReplayEngine::replay_corpus`] quarantines and retries them
//! (see DESIGN.md §7).

// Library code must degrade gracefully at crawl scale — panicking escape
// hatches are confined to tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod datasets;
pub mod error;
pub mod faults;
pub mod filter;
pub mod flowgraph;
pub mod lang;
pub mod nbgen;
pub mod notebook;
pub mod replay;
pub mod split;
pub mod stats;
pub mod store;
pub mod stream;
pub mod tablegen;

pub use datasets::DatasetRepository;
pub use error::{ReplayError, ReplayErrorKind};
pub use faults::{FaultKind, FaultSpec, KindCounters, RobustnessStats};
pub use filter::{filter_invocations, FilterStats};
pub use flowgraph::{FlowGraph, OpKind};
pub use lang::{CellAst, Expr, Stmt};
pub use nbgen::{CorpusConfig, CorpusGenerator, GeneratedCorpus};
pub use notebook::{Cell, Notebook};
pub use replay::{OpInvocation, ReplayEngine, ReplayOutcome, ReplayReport};
pub use split::{grouped_split, SplitSets};
pub use store::{SampleStore, ShardMeta};
pub use stream::{
    corpus_id, replay_corpus_streamed, scan_scenario_stats, ScenarioStats, StreamConfig,
    StreamSummary,
};
pub use tablegen::{TableGenConfig, TableGenerator, TableKind};
