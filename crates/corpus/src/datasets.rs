//! Simulated external data sources for replay repair (§3.2).
//!
//! When a notebook's `read_csv` path cannot be resolved from the cloned
//! repository, the paper's replay system (2) scrapes URLs from adjacent
//! markdown and (3) falls back to the Kaggle dataset API. This module is the
//! offline stand-in for both: a registry of downloadable URLs and a
//! Kaggle-style dataset repository keyed by dataset slug.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An offline repository of datasets and URL-addressable files.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetRepository {
    /// Kaggle-style datasets: slug → (file name → CSV text).
    datasets: HashMap<String, HashMap<String, String>>,
    /// Directly downloadable URLs: url → CSV text.
    urls: HashMap<String, String>,
}

impl DatasetRepository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Host a file under a Kaggle-style dataset slug.
    pub fn add_dataset_file(
        &mut self,
        slug: impl Into<String>,
        file: impl Into<String>,
        content: impl Into<String>,
    ) {
        self.datasets
            .entry(slug.into())
            .or_default()
            .insert(file.into(), content.into());
    }

    /// Host a file at a URL.
    pub fn add_url(&mut self, url: impl Into<String>, content: impl Into<String>) {
        self.urls.insert(url.into(), content.into());
    }

    /// `kaggle datasets download -d <slug>` equivalent: all files of the
    /// dataset, or `None` if the slug is unknown.
    pub fn download_dataset(&self, slug: &str) -> Option<&HashMap<String, String>> {
        self.datasets.get(slug)
    }

    /// Search every hosted dataset for a file with the given basename —
    /// the replay engine's last-resort lookup when only a file name is
    /// known.
    pub fn find_file_by_name(&self, basename: &str) -> Option<&str> {
        // Deterministic order: scan slugs sorted so replay is reproducible.
        let mut slugs: Vec<&String> = self.datasets.keys().collect();
        slugs.sort();
        for slug in slugs {
            let files = &self.datasets[slug];
            let mut names: Vec<&String> = files.keys().collect();
            names.sort();
            for name in names {
                if name == basename {
                    return Some(files[name].as_str());
                }
            }
        }
        None
    }

    /// Fetch a URL (the simulated "download using URLs extracted from
    /// comments/text cells").
    pub fn fetch_url(&self, url: &str) -> Option<&str> {
        self.urls.get(url).map(String::as_str)
    }

    /// Absorb another repository (union of datasets and URLs). Used to
    /// combine the per-notebook deltas produced by parallel corpus
    /// generation; planted slugs/URLs are unique per notebook, so the merge
    /// order does not matter.
    pub fn merge(&mut self, other: DatasetRepository) {
        for (slug, files) in other.datasets {
            self.datasets.entry(slug).or_default().extend(files);
        }
        self.urls.extend(other.urls);
    }

    pub fn num_datasets(&self) -> usize {
        self.datasets.len()
    }

    pub fn num_urls(&self) -> usize {
        self.urls.len()
    }
}

/// Extract `http(s)://…` URLs from markdown text (replay repair source 2).
pub fn extract_urls(markdown: &str) -> Vec<&str> {
    let mut out = Vec::new();
    for token in markdown.split_whitespace() {
        let t = token.trim_matches(|c: char| "()<>[],'\"".contains(c));
        if t.starts_with("http://") || t.starts_with("https://") {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_roundtrip() {
        let mut repo = DatasetRepository::new();
        repo.add_dataset_file("user/titanic", "titanic.csv", "a,b\n1,2\n");
        let files = repo.download_dataset("user/titanic").unwrap();
        assert!(files.contains_key("titanic.csv"));
        assert!(repo.download_dataset("nope").is_none());
    }

    #[test]
    fn find_by_basename_scans_all_datasets() {
        let mut repo = DatasetRepository::new();
        repo.add_dataset_file("a/one", "x.csv", "x\n1\n");
        repo.add_dataset_file("b/two", "y.csv", "y\n2\n");
        assert_eq!(repo.find_file_by_name("y.csv"), Some("y\n2\n"));
        assert!(repo.find_file_by_name("z.csv").is_none());
    }

    #[test]
    fn url_fetch() {
        let mut repo = DatasetRepository::new();
        repo.add_url("https://data.example.com/f.csv", "v\n9\n");
        assert_eq!(repo.fetch_url("https://data.example.com/f.csv"), Some("v\n9\n"));
        assert!(repo.fetch_url("https://other").is_none());
    }

    #[test]
    fn url_extraction_from_markdown() {
        let md = "Data from (https://data.example.com/f.csv) and see http://a.b/c.";
        let urls = extract_urls(md);
        assert_eq!(
            urls,
            vec!["https://data.example.com/f.csv", "http://a.b/c."]
        );
        assert!(extract_urls("no links here").is_empty());
    }
}
