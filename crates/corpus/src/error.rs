//! Typed replay errors — the taxonomy behind §3.2's failure handling.
//!
//! The crawl-scale pipeline survives because every failure is *classified*:
//! a missing file triggers path repair, a missing package triggers a
//! simulated install, a timeout or panic triggers bounded retry and
//! quarantine, and a schema mismatch is recorded and skipped. Stringly
//! errors made that classification a parsing exercise; [`ReplayError`]
//! makes it a `match`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The failure classes the replay pipeline distinguishes. Each kind maps to
/// a distinct recovery policy (see `ReplayEngine` and DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplayErrorKind {
    /// A data file could not be read at the given path (hard-coded
    /// absolute paths, missing downloads). Repair: basename search, URL
    /// hints, dataset API; retryable at the notebook level.
    IoPath,
    /// An imported package is absent. Repair: simulated `pip install`;
    /// permanent if the registry cannot resolve it.
    MissingPackage,
    /// The operator itself rejected its inputs (unknown column, undefined
    /// variable, malformed data). Permanent: retrying cannot help.
    SchemaMismatch,
    /// A panic escaped an operator (or was injected). Transient in the
    /// wild (OOM kills, flaky native code) — retried with a bound.
    OperatorPanic,
    /// The cell exceeded its execution budget (the paper's 5-minute
    /// timeout). Retryable at the notebook level.
    Timeout,
}

impl ReplayErrorKind {
    pub const ALL: [ReplayErrorKind; 5] = [
        ReplayErrorKind::IoPath,
        ReplayErrorKind::MissingPackage,
        ReplayErrorKind::SchemaMismatch,
        ReplayErrorKind::OperatorPanic,
        ReplayErrorKind::Timeout,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            ReplayErrorKind::IoPath => "io_path",
            ReplayErrorKind::MissingPackage => "missing_package",
            ReplayErrorKind::SchemaMismatch => "schema_mismatch",
            ReplayErrorKind::OperatorPanic => "operator_panic",
            ReplayErrorKind::Timeout => "timeout",
        }
    }

    /// Whether a whole-notebook retry can plausibly clear this failure.
    /// Schema mismatches and unresolvable packages are deterministic;
    /// paths, timeouts, and panics are environmental and worth another
    /// round before quarantine.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ReplayErrorKind::IoPath | ReplayErrorKind::Timeout | ReplayErrorKind::OperatorPanic
        )
    }
}

impl fmt::Display for ReplayErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A classified replay failure: the kind drives recovery, `message` keeps
/// the Python-style error text a real crawler would have parsed, and
/// `subject` carries the structured payload (path or package name) so no
/// downstream code ever re-parses the message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayError {
    pub kind: ReplayErrorKind,
    pub message: String,
    pub subject: Option<String>,
}

impl ReplayError {
    pub fn io_path(path: impl Into<String>) -> Self {
        let path = path.into();
        ReplayError {
            kind: ReplayErrorKind::IoPath,
            message: format!("FileNotFoundError: No such file: '{path}'"),
            subject: Some(path),
        }
    }

    pub fn missing_package(pkg: impl Into<String>) -> Self {
        let pkg = pkg.into();
        ReplayError {
            kind: ReplayErrorKind::MissingPackage,
            message: format!("ModuleNotFoundError: No module named '{pkg}'"),
            subject: Some(pkg),
        }
    }

    pub fn schema(message: impl Into<String>) -> Self {
        ReplayError {
            kind: ReplayErrorKind::SchemaMismatch,
            message: message.into(),
            subject: None,
        }
    }

    pub fn operator_panic(message: impl Into<String>) -> Self {
        ReplayError {
            kind: ReplayErrorKind::OperatorPanic,
            message: message.into(),
            subject: None,
        }
    }

    pub fn timeout() -> Self {
        ReplayError {
            kind: ReplayErrorKind::Timeout,
            message: "TimeoutError: cell exceeded execution budget".into(),
            subject: None,
        }
    }

    /// The unresolvable path, for [`ReplayErrorKind::IoPath`] errors.
    pub fn missing_path(&self) -> Option<&str> {
        (self.kind == ReplayErrorKind::IoPath)
            .then_some(self.subject.as_deref())
            .flatten()
    }

    /// The missing package name, for [`ReplayErrorKind::MissingPackage`].
    pub fn package_name(&self) -> Option<&str> {
        (self.kind == ReplayErrorKind::MissingPackage)
            .then_some(self.subject.as_deref())
            .flatten()
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

impl std::error::Error for ReplayError {}

impl From<autosuggest_parallel::TaskPanic> for ReplayError {
    fn from(p: autosuggest_parallel::TaskPanic) -> Self {
        ReplayError::operator_panic(format!("panic escaped the replay engine: {}", p.message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_message_and_subject() {
        let e = ReplayError::io_path("a/b.csv");
        assert_eq!(e.kind, ReplayErrorKind::IoPath);
        assert_eq!(e.missing_path(), Some("a/b.csv"));
        assert_eq!(e.message, "FileNotFoundError: No such file: 'a/b.csv'");
        assert_eq!(e.package_name(), None);

        let e = ReplayError::missing_package("seaborn");
        assert_eq!(e.package_name(), Some("seaborn"));
        assert_eq!(e.missing_path(), None);

        assert_eq!(ReplayError::timeout().kind, ReplayErrorKind::Timeout);
        assert_eq!(
            ReplayError::operator_panic("boom").kind,
            ReplayErrorKind::OperatorPanic
        );
        assert_eq!(ReplayError::schema("KeyError: 'x'").kind, ReplayErrorKind::SchemaMismatch);
    }

    #[test]
    fn retryability_matches_the_recovery_policy() {
        assert!(ReplayErrorKind::IoPath.retryable());
        assert!(ReplayErrorKind::Timeout.retryable());
        assert!(ReplayErrorKind::OperatorPanic.retryable());
        assert!(!ReplayErrorKind::MissingPackage.retryable());
        assert!(!ReplayErrorKind::SchemaMismatch.retryable());
    }

    #[test]
    fn task_panics_convert_to_operator_panic() {
        let e = ReplayError::from(autosuggest_parallel::TaskPanic {
            index: 3,
            message: "boom".into(),
        });
        assert_eq!(e.kind, ReplayErrorKind::OperatorPanic);
        assert!(e.message.contains("boom"));
    }
}
