//! GroupBy column prediction baselines (Table 6).
//!
//! Each method scores every column of a table; higher = more likely a
//! GroupBy (dimension) column. Aggregation columns should sink to the
//! bottom of the ranking.

use autosuggest_dataframe::{DataFrame, DType};
use std::collections::HashMap;

/// **SQL-history** (SnipSuggest): recommend by how frequently each column
/// *name* appeared as a GroupBy key in historical (training) queries.
#[derive(Debug, Clone, Default)]
pub struct SqlHistory {
    groupby_counts: HashMap<String, u64>,
    agg_counts: HashMap<String, u64>,
}

impl SqlHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one historical usage.
    pub fn observe(&mut self, column_name: &str, used_as_groupby: bool) {
        let slot = if used_as_groupby {
            &mut self.groupby_counts
        } else {
            &mut self.agg_counts
        };
        *slot.entry(column_name.to_lowercase()).or_insert(0) += 1;
    }

    pub fn scores(&self, df: &DataFrame) -> Vec<f64> {
        df.columns()
            .iter()
            .map(|c| {
                let name = c.name().to_lowercase();
                let g = self.groupby_counts.get(&name).copied().unwrap_or(0) as f64;
                let a = self.agg_counts.get(&name).copied().unwrap_or(0) as f64;
                // Frequency as groupby, discounted by agg usage; unseen
                // names score 0 (the "no history" failure mode the paper
                // notes).
                (g + 0.5) / (g + a + 1.0) * (g + 1.0).ln().max(0.0)
            })
            .collect()
    }
}

/// **Coarse-grained-types** (Ordonez): categorical → GroupBy, numeric
/// (including numeric-looking strings) → Aggregation.
pub fn coarse_type_scores(df: &DataFrame) -> Vec<f64> {
    df.columns()
        .iter()
        .map(|c| match c.dtype() {
            DType::Str | DType::Bool => 1.0,
            DType::Null => 0.5,
            // All numerics — int, float, date — are "measures".
            _ => 0.0,
        })
        .collect()
}

/// **Fine-grained-types** (ShowMe / Tableau field roles): refines the
/// coarse rule with fine types — date-times and zip/year-like integers are
/// dimensions even though they are numbers.
pub fn fine_type_scores(df: &DataFrame) -> Vec<f64> {
    df.columns()
        .iter()
        .map(|c| match c.dtype() {
            DType::Str | DType::Bool => 1.0,
            DType::Date => 0.9,
            DType::Int => {
                // Year-like or zip-like small ranges are dimensions.
                match c.numeric_range() {
                    Some((lo, hi)) if (1800.0..=2200.0).contains(&lo) && hi <= 2200.0 => 0.8,
                    Some((lo, hi)) if lo >= 0.0 && hi <= 99999.0 && c.distinct_count() <= 1000 => {
                        0.4
                    }
                    _ => 0.1,
                }
            }
            _ => 0.0,
        })
        .collect()
}

/// **Min-Cardinality**: pick the lowest-cardinality columns as GroupBy —
/// the surprisingly strong heuristic of Table 6.
pub fn min_cardinality_scores(df: &DataFrame) -> Vec<f64> {
    df.columns()
        .iter()
        .map(|c| 1.0 / c.distinct_count().max(1) as f64)
        .collect()
}

/// Rank columns descending by score (stable).
pub fn rank_desc(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn filings() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "sector",
                (0..12).map(|i| Value::Str(format!("s{}", i % 3))).collect(),
            ),
            ("year", (0..12).map(|i| Value::Int(2006 + i % 3)).collect()),
            (
                "revenue",
                (0..12).map(|i| Value::Float(i as f64 * 13.7 + 100.0)).collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn coarse_types_miss_numeric_dimensions() {
        let s = coarse_type_scores(&filings());
        // year (int) is wrongly scored as a measure — the documented
        // weakness that keeps this baseline at 0.47 in Table 6.
        assert_eq!(s[1], 0.0);
        assert_eq!(s[0], 1.0);
    }

    #[test]
    fn fine_types_recover_year() {
        let s = fine_type_scores(&filings());
        assert!(s[1] > 0.5, "year must be a dimension: {s:?}");
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn min_cardinality_ranks_dimensions_first() {
        let s = min_cardinality_scores(&filings());
        let order = rank_desc(&s);
        // sector and year (3 distinct) above revenue (12 distinct).
        assert!(order[0] < 2 && order[1] < 2);
        assert_eq!(order[2], 2);
    }

    #[test]
    fn sql_history_learns_from_observations() {
        let mut h = SqlHistory::new();
        for _ in 0..10 {
            h.observe("year", true);
            h.observe("revenue", false);
        }
        let s = h.scores(&filings());
        assert!(s[1] > s[2], "year should outscore revenue: {s:?}");
        // Unseen column names give no signal.
        let unseen = DataFrame::from_columns(vec![(
            "mystery",
            vec![Value::Str("x".into())],
        )])
        .unwrap();
        assert!(h.scores(&unseen)[0] < 0.5);
    }

    #[test]
    fn rank_desc_is_stable() {
        assert_eq!(rank_desc(&[0.5, 0.9, 0.5]), vec![1, 0, 2]);
    }
}
