//! Every comparator method from the Auto-Suggest evaluation (§6).
//!
//! The paper benchmarks against two families: published methods from the
//! literature (re-implemented here as white boxes, §6.2) and anonymised
//! commercial systems Vendor-A/B/C, which we reconstruct from the heuristic
//! behaviour the paper attributes to them (see DESIGN.md §1).
//!
//! * Join columns (Table 3): [`join`] — ML-FK, PowerPivot, Multi, Holistic,
//!   Max-Overlap; [`vendors`] — Vendor-A/B/C.
//! * Join type (Table 5): [`vendors`] — always-inner default.
//! * GroupBy (Table 6): [`groupby`] — SQL-history, coarse/fine-grained
//!   types, Min-Cardinality, Vendor-B/C.
//! * Pivot (Table 8): [`pivot`] — Affinity (ShowMe), Type-Rules,
//!   Min-Emptiness, Balanced-Split.
//! * Unpivot (Table 9): [`unpivot`] — Pattern-similarity,
//!   Col-name-similarity, Data-type, Contiguous-type.
//! * Next operator (Table 11): [`nextop`] — N-gram, Single-Operators,
//!   Random.

pub mod groupby;
pub mod join;
pub mod nextop;
pub mod pivot;
pub mod unpivot;
pub mod vendors;
