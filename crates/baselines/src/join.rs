//! Join-column prediction baselines (Table 3).
//!
//! Each method scores a [`JoinCandidate`]; ranking descending by score
//! yields its suggestion list. All are white-box reimplementations of the
//! published methods the paper compares against, with their documented
//! emphases: FK-style uniqueness + inclusion-dependency checks (ML-FK,
//! PowerPivot), distributional distances (Multi, Holistic), and plain value
//! overlap (Max-Overlap).

use autosuggest_dataframe::{DataFrame, DType};
use autosuggest_features::{join_features, JoinCandidate};

/// A join-column scoring method.
pub trait JoinBaseline {
    fn name(&self) -> &'static str;
    /// Higher = more likely the intended join.
    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64;

    /// Rank candidates descending (stable for ties).
    fn rank(
        &self,
        left: &DataFrame,
        right: &DataFrame,
        cands: &[JoinCandidate],
    ) -> Vec<usize> {
        let scores: Vec<f64> = cands
            .iter()
            .map(|c| self.score(left, right, c))
            .collect();
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order
    }
}

/// Character-trigram Jaccard similarity between column names, used by the
/// FK-discovery methods (name similarity is one of their classic features).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::HashSet<String> {
        let padded = format!("  {}  ", s.to_lowercase());
        let chars: Vec<char> = padded.chars().collect();
        chars.windows(3).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    let inter = ga.intersection(&gb).count() as f64;
    // Overlap coefficient rather than Jaccard: FK names are usually a
    // *prefix/suffix extension* of the key name ("title" vs
    // "title_on_list"), which Jaccard under-scores.
    let denom = ga.len().min(gb.len()) as f64;
    if denom == 0.0 {
        0.0
    } else {
        inter / denom
    }
}

/// Mean name similarity across candidate column pairs.
fn cand_name_similarity(left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
    let mut s = 0.0;
    for (&l, &r) in cand.left_cols.iter().zip(&cand.right_cols) {
        s += name_similarity(left.column_at(l).name(), right.column_at(r).name());
    }
    s / cand.left_cols.len() as f64
}

/// **Max-Overlap**: rank by Jaccard similarity of value sets — the common
/// heuristic of [39] and [36].
pub struct MaxOverlap;

impl JoinBaseline for MaxOverlap {
    fn name(&self) -> &'static str {
        "max-overlap"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        join_features(left, right, cand).get("jaccard_similarity")
    }
}

/// **ML-FK** (Rostin et al.): a learned FK classifier over a rich feature
/// set. Reimplemented as its published feature recipe with the weighting
/// that makes it the strongest literature baseline: inclusion dependency in
/// the FK direction, key-ness of the referenced side, name similarity, and
/// a table-size prior, with the Inclusion-Dependency requirement relaxed as
/// the paper does for ad-hoc joins (§6.5.1).
pub struct MlFk;

impl JoinBaseline for MlFk {
    fn name(&self) -> &'static str {
        "ML-FK"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        let f = join_features(left, right, cand);
        // FK direction: the side with higher distinct ratio is the key side;
        // inclusion is measured *into* that side.
        let keyness = f.get("distinct_ratio_max");
        let inclusion = f.get("containment_max");
        let name_sim = cand_name_similarity(left, right, cand);
        // Soft key requirement instead of the strict PK check (relaxed ID).
        let key_gate = if keyness > 0.95 { 1.0 } else { keyness * 0.6 };
        2.0 * inclusion * key_gate
            + 0.8 * name_sim
            + 0.5 * f.get("key_is_string")
            - 0.4 * f.get("key_is_int")
            + 0.2 * f.get("single_column")
            + 0.1 * f.get("leftness_rel_left").mul_add(-1.0, 1.0)
    }
}

/// **PowerPivot** (Chen et al.): heuristic pruning + content similarity.
/// Prunes numeric and boolean columns (FKs in curated warehouses are
/// strings), requires the referenced side to look like a key, then ranks by
/// containment.
pub struct PowerPivot;

impl JoinBaseline for PowerPivot {
    fn name(&self) -> &'static str {
        "PowerPivot"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        // Heuristic pruning: every key column must be a string.
        let all_str = cand
            .left_cols
            .iter()
            .zip(&cand.right_cols)
            .all(|(&l, &r)| {
                left.column_at(l).dtype() == DType::Str
                    && right.column_at(r).dtype() == DType::Str
            });
        if !all_str {
            return f64::NEG_INFINITY;
        }
        let f = join_features(left, right, cand);
        if f.get("distinct_ratio_max") < 0.9 {
            return f.get("containment_max") * 0.1; // not key-like: demoted
        }
        f.get("containment_max")
    }
}

/// **Multi** (Zhang et al.): multi-column FK discovery via distributional
/// distances (EMD). Scores by (negated) Earth Mover's Distance between the
/// two columns' value distributions — numeric columns on the number line,
/// string columns via set overlap.
pub struct Multi;

/// 1D EMD between two sorted numeric samples normalised to [0, 1].
fn numeric_emd(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let norm = |xs: &[f64]| -> Vec<f64> {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(f64::EPSILON);
        let mut v: Vec<f64> = xs.iter().map(|x| (x - lo) / span).collect();
        v.sort_by(f64::total_cmp);
        v
    };
    let (na, nb) = (norm(a), norm(b));
    // EMD between empirical CDFs via quantile sampling.
    let samples = 32;
    let mut d = 0.0;
    for i in 0..samples {
        let q = i as f64 / (samples - 1) as f64;
        let qa = na[((q * (na.len() - 1) as f64).round()) as usize];
        let qb = nb[((q * (nb.len() - 1) as f64).round()) as usize];
        d += (qa - qb).abs();
    }
    d / samples as f64
}

fn distributional_distance(left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
    let mut total = 0.0;
    for (&l, &r) in cand.left_cols.iter().zip(&cand.right_cols) {
        let lc = left.column_at(l);
        let rc = right.column_at(r);
        if lc.dtype().is_numeric() && rc.dtype().is_numeric() {
            let a: Vec<f64> = lc.non_null().filter_map(|v| v.as_f64()).collect();
            let b: Vec<f64> = rc.non_null().filter_map(|v| v.as_f64()).collect();
            total += numeric_emd(&a, &b);
        } else {
            // Set distance for non-numeric columns.
            let sa = lc.distinct_set();
            let sb = rc.distinct_set();
            let inter = sa.intersection(&sb).count() as f64;
            let union = (sa.len() + sb.len()) as f64 - inter;
            total += 1.0 - if union > 0.0 { inter / union } else { 0.0 };
        }
    }
    total / cand.left_cols.len() as f64
}

impl JoinBaseline for Multi {
    fn name(&self) -> &'static str {
        "Multi"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        -distributional_distance(left, right, cand)
    }
}

/// **Holistic** (Jiang & Naumann): distributional distances combined with
/// inclusion, name similarity, and key-ness.
pub struct Holistic;

impl JoinBaseline for Holistic {
    fn name(&self) -> &'static str {
        "Holistic"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        let f = join_features(left, right, cand);
        let dist = distributional_distance(left, right, cand);
        0.9 * (1.0 - dist)
            + 0.8 * f.get("containment_max")
            + 0.5 * f.get("distinct_ratio_max")
            + 0.4 * cand_name_similarity(left, right, cand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    /// The Fig. 5 trap: titles partially overlap (the true join), while the
    /// integer rank/weeks pair has perfect containment.
    fn books() -> (DataFrame, DataFrame, Vec<JoinCandidate>) {
        let left = DataFrame::from_columns(vec![
            (
                "title",
                ["dune", "it", "emma", "holes", "dracula"]
                    .iter()
                    .map(|s| Value::Str((*s).into()))
                    .collect(),
            ),
            ("rank_on_list", (1..=5).map(Value::Int).collect()),
        ])
        .unwrap();
        let right = DataFrame::from_columns(vec![
            (
                "title_on_list",
                ["dune", "emma", "gatsby", "sula"]
                    .iter()
                    .map(|s| Value::Str((*s).into()))
                    .collect(),
            ),
            (
                "weeks_on_list",
                vec![Value::Int(2), Value::Int(3), Value::Int(1), Value::Int(4)],
            ),
        ])
        .unwrap();
        let cands = vec![
            JoinCandidate { left_cols: vec![0], right_cols: vec![0] }, // truth
            JoinCandidate { left_cols: vec![1], right_cols: vec![1] }, // trap
        ];
        (left, right, cands)
    }

    #[test]
    fn max_overlap_falls_for_the_integer_trap() {
        let (l, r, cands) = books();
        let m = MaxOverlap;
        // weeks {1,2,3,4} ⊂ rank {1..5}: jaccard 4/5 = 0.8 beats titles 2/7.
        assert!(m.score(&l, &r, &cands[1]) > m.score(&l, &r, &cands[0]));
        assert_eq!(m.rank(&l, &r, &cands)[0], 1);
    }

    #[test]
    fn mlfk_prefers_named_string_keys() {
        let (l, r, cands) = books();
        let m = MlFk;
        // Name similarity (title vs title_on_list) + string bonus push the
        // true pair above the integer trap despite lower overlap.
        assert_eq!(m.rank(&l, &r, &cands)[0], 0);
    }

    #[test]
    fn powerpivot_prunes_integer_pairs() {
        let (l, r, cands) = books();
        let p = PowerPivot;
        assert_eq!(p.score(&l, &r, &cands[1]), f64::NEG_INFINITY);
        assert!(p.score(&l, &r, &cands[0]).is_finite());
    }

    #[test]
    fn numeric_emd_properties() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(numeric_emd(&a, &a) < 1e-9);
        let uniform: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let skewed: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        assert!(numeric_emd(&uniform, &skewed) > 0.1);
        assert_eq!(numeric_emd(&[], &a), 1.0);
    }

    #[test]
    fn name_similarity_behaviour() {
        assert_eq!(name_similarity("title", "title"), 1.0);
        assert!(name_similarity("title", "title_on_list") > 0.3);
        assert!(name_similarity("title", "weeks") < 0.1);
        assert!(name_similarity("Revenue", "revenue") > 0.99);
    }

    #[test]
    fn holistic_and_multi_score_identity_highest() {
        let (l, _, _) = books();
        let cand = JoinCandidate { left_cols: vec![0], right_cols: vec![0] };
        let self_cands = [cand.clone()];
        for b in [&Multi as &dyn JoinBaseline, &Holistic] {
            let self_score = b.score(&l, &l.clone(), &cand);
            let (l2, r2, _) = books();
            let cross = b.score(&l2, &r2, &self_cands[0]);
            assert!(self_score >= cross, "{}", b.name());
        }
    }
}
