//! Unpivot column-selection baselines (Table 9).
//!
//! Each method selects the subset of columns an Unpivot should collapse.

use autosuggest_dataframe::{Column, DataFrame, DType};
use crate::join::name_similarity;

/// A value-pattern signature: the shape of a column's rendered values
/// (character classes + length buckets), as used by the
/// **Pattern-similarity** heuristic of [58].
fn pattern_signature(col: &Column) -> (DType, u8, u8) {
    let mut digits = 0usize;
    let mut alphas = 0usize;
    let mut others = 0usize;
    let mut len_sum = 0usize;
    let mut n = 0usize;
    for v in col.non_null().take(50) {
        let s = v.render();
        for ch in s.chars() {
            if ch.is_ascii_digit() {
                digits += 1;
            } else if ch.is_alphabetic() {
                alphas += 1;
            } else {
                others += 1;
            }
        }
        len_sum += s.chars().count();
        n += 1;
    }
    if n == 0 {
        return (col.dtype(), 0, 0);
    }
    let total = (digits + alphas + others).max(1);
    // Dominant character class: 0=digit, 1=alpha, 2=mixed.
    let class = if digits * 10 >= total * 8 {
        0
    } else if alphas * 10 >= total * 8 {
        1
    } else {
        2
    };
    let avg_len = (len_sum / n).min(255) as u8;
    (col.dtype(), class, avg_len / 3) // bucketise length
}

/// **Pattern-similarity** [58]: collapse the largest group of columns whose
/// value patterns are identical.
pub fn pattern_similarity_select(df: &DataFrame) -> Vec<usize> {
    largest_group_by_key(df, pattern_signature)
}

/// **Col-name-similarity** [79]: cluster columns by name similarity
/// (Jaccard over trigrams); collapse the largest cluster.
pub fn col_name_similarity_select(df: &DataFrame) -> Vec<usize> {
    let n = df.num_columns();
    if n < 2 {
        return vec![];
    }
    // Single-link clustering with a fixed threshold.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let sim = name_similarity(df.column_at(i).name(), df.column_at(j).name());
            if sim >= 0.4 {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    largest_component(&mut parent, n)
}

/// **Data-type** [79]: collapse the largest group of columns sharing a
/// dtype.
pub fn data_type_select(df: &DataFrame) -> Vec<usize> {
    largest_group_by_key(df, |c| c.dtype())
}

/// **Contiguous-type** [79]: like Data-type, but the collapsed columns must
/// be contiguous in the table — pick the longest same-dtype run.
pub fn contiguous_type_select(df: &DataFrame) -> Vec<usize> {
    let n = df.num_columns();
    if n == 0 {
        return vec![];
    }
    let types: Vec<DType> = df.columns().iter().map(Column::dtype).collect();
    let mut best: (usize, usize) = (0, 0); // (start, len)
    let mut run_start = 0usize;
    for i in 1..=n {
        if i == n || types[i] != types[run_start] {
            let len = i - run_start;
            // Prefer the longest run; among equals prefer the later one
            // (value blocks sit to the right of id columns).
            if len >= best.1 {
                best = (run_start, len);
            }
            run_start = i;
        }
    }
    (best.0..best.0 + best.1).collect()
}

fn largest_group_by_key<K: std::hash::Hash + Eq>(
    df: &DataFrame,
    key: impl Fn(&Column) -> K,
) -> Vec<usize> {
    let mut groups: std::collections::HashMap<K, Vec<usize>> = std::collections::HashMap::new();
    for (i, c) in df.columns().iter().enumerate() {
        groups.entry(key(c)).or_default().push(i);
    }
    groups
        .into_values()
        .max_by_key(|v| (v.len(), std::cmp::Reverse(v[0])))
        .unwrap_or_default()
}

fn largest_component(parent: &mut Vec<usize>, n: usize) -> Vec<usize> {
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let mut comps: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..n {
        let r = find(parent, i);
        comps.entry(r).or_default().push(i);
    }
    comps
        .into_values()
        .max_by_key(|v| (v.len(), std::cmp::Reverse(v[0])))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    /// name, sector (strings) + year columns 2006..2008 (floats) — Fig. 11.
    fn wide() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "name",
                (0..5).map(|i| Value::Str(format!("co{i}"))).collect(),
            ),
            (
                "sector",
                (0..5).map(|i| Value::Str(format!("s{}", i % 2))).collect(),
            ),
            ("2006", (0..5).map(|i| Value::Float(i as f64 + 0.5)).collect()),
            ("2007", (0..5).map(|i| Value::Float(i as f64 + 1.5)).collect()),
            ("2008", (0..5).map(|i| Value::Float(i as f64 + 2.5)).collect()),
        ])
        .unwrap()
    }

    #[test]
    fn data_type_selects_float_block() {
        assert_eq!(data_type_select(&wide()), vec![2, 3, 4]);
    }

    #[test]
    fn contiguous_type_selects_trailing_run() {
        assert_eq!(contiguous_type_select(&wide()), vec![2, 3, 4]);
        // With an interrupting string column, the run is cut short.
        let df = DataFrame::from_columns(vec![
            ("a", vec![Value::Float(1.0)]),
            ("x", vec![Value::Str("s".into())]),
            ("b", vec![Value::Float(2.0)]),
            ("c", vec![Value::Float(3.0)]),
        ])
        .unwrap();
        assert_eq!(contiguous_type_select(&df), vec![2, 3]);
    }

    #[test]
    fn name_similarity_clusters_year_columns() {
        let sel = col_name_similarity_select(&wide());
        // The year names 2006/2007/2008 share the "200" trigram cluster.
        assert!(sel.contains(&2) && sel.contains(&3) && sel.contains(&4), "{sel:?}");
        assert!(!sel.contains(&0));
    }

    #[test]
    fn pattern_similarity_separates_numeric_patterns() {
        let sel = pattern_similarity_select(&wide());
        assert_eq!(sel, vec![2, 3, 4]);
    }

    #[test]
    fn data_type_fails_when_id_shares_type_with_block() {
        // The documented weakness: an extra float id column is absorbed.
        let df = DataFrame::from_columns(vec![
            ("score_id", (0..4).map(|i| Value::Float(i as f64)).collect()),
            ("name", (0..4).map(|i| Value::Str(format!("n{i}"))).collect()),
            ("2006", (0..4).map(|i| Value::Float(i as f64 + 9.0)).collect()),
            ("2007", (0..4).map(|i| Value::Float(i as f64 + 8.0)).collect()),
        ])
        .unwrap();
        let sel = data_type_select(&df);
        assert!(sel.contains(&0), "the float id gets wrongly collapsed");
        // Contiguous-type avoids this specific trap.
        assert_eq!(contiguous_type_select(&df), vec![2, 3]);
    }

    #[test]
    fn empty_and_tiny_frames_are_safe() {
        let empty = DataFrame::empty();
        assert!(contiguous_type_select(&empty).is_empty());
        assert!(col_name_similarity_select(&empty).is_empty());
    }
}
