//! Next-operator baselines (Table 11).
//!
//! The N-gram model lives in `autosuggest_nn::NgramModel`; the RNN-only and
//! Single-Operators variants are configurations of the core predictor. This
//! module provides the Random baseline and shared ranking helpers.

use autosuggest_corpus::OpKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// **Random**: a uniformly random permutation of the 7 sequence operators
/// per query (seeded per-call so evaluation is reproducible).
pub struct RandomNextOp {
    seed: u64,
}

impl RandomNextOp {
    pub fn new(seed: u64) -> Self {
        RandomNextOp { seed }
    }

    /// Ranked operator ids for the `query_idx`-th test case.
    pub fn predict_ranked(&self, query_idx: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (query_idx as u64).wrapping_mul(0x9e37));
        let mut order: Vec<usize> = (0..OpKind::SEQUENCE_OPS.len()).collect();
        order.shuffle(&mut rng);
        order
    }
}

/// Rank operator ids descending by score (stable for ties).
pub fn rank_ops(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_a_permutation_and_deterministic() {
        let r = RandomNextOp::new(5);
        let a = r.predict_ranked(3);
        let b = r.predict_ranked(3);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        // Different queries shuffle differently (almost surely).
        assert_ne!(r.predict_ranked(0), r.predict_ranked(1));
    }

    #[test]
    fn rank_ops_orders_by_score() {
        assert_eq!(rank_ops(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
    }
}
