//! Pivot index/header split baselines (Table 8).
//!
//! Each method takes the input table and the dimension columns the user
//! selected (as column indices) and returns `(index, header)` — the split
//! whose quality Table 8 scores by full accuracy and Rand index.

use autosuggest_dataframe::{DataFrame, DType};
use autosuggest_features::affinity::raw_err;

/// A predicted split: dimension columns assigned to index vs. header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    pub index: Vec<usize>,
    pub header: Vec<usize>,
}

impl Split {
    fn normalised(mut self) -> Split {
        self.index.sort_unstable();
        self.header.sort_unstable();
        self
    }
}

/// **Affinity** (ShowMe): group attributes with hierarchical (FD-like)
/// relationships on the same side. Columns are linked when their
/// emptiness-reduction-ratio reveals a strong dependency; connected
/// components form the index, everything else the header.
pub fn affinity_split(df: &DataFrame, dims: &[usize]) -> Split {
    assert!(dims.len() >= 2);
    // Union-find over dims; link pairs with ERR ≥ 2 (a 2x emptiness saving
    // signals hierarchy).
    let n = dims.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for (i, &di) in dims.iter().enumerate() {
        for (j, &dj) in dims.iter().enumerate().skip(i + 1) {
            if raw_err(df, di, dj) >= 2.0 {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    // Largest component → index; the rest → header.
    let mut comp_size: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for i in 0..n {
        *comp_size.entry(find(&mut parent, i)).or_insert(0) += 1;
    }
    let largest = comp_size
        .iter()
        .max_by_key(|&(root, size)| (*size, std::cmp::Reverse(*root)))
        .map(|(&root, _)| root)
        .expect("non-empty");
    let mut index = Vec::new();
    let mut header = Vec::new();
    for (i, &d) in dims.iter().enumerate() {
        if find(&mut parent, i) == largest {
            index.push(d);
        } else {
            header.push(d);
        }
    }
    if header.is_empty() {
        // Hierarchical methods degenerate when everything links: peel the
        // last column off as header.
        header.push(index.pop().expect("at least two dims"));
    }
    Split { index, header }.normalised()
}

/// **Type-Rules** (US patent 7,480,675): static type-based placement —
/// date/time and numeric dimensions go to the header (column labels),
/// textual attributes to the index.
pub fn type_rules_split(df: &DataFrame, dims: &[usize]) -> Split {
    assert!(dims.len() >= 2);
    let mut index = Vec::new();
    let mut header = Vec::new();
    for &d in dims {
        match df.column_at(d).dtype() {
            DType::Str | DType::Bool => index.push(d),
            _ => header.push(d),
        }
    }
    if index.is_empty() {
        index.push(header.remove(0));
    }
    if header.is_empty() {
        header.push(index.pop().expect("at least two dims"));
    }
    Split { index, header }.normalised()
}

/// **Min-Emptiness**: greedily merge the pair of column groups with the
/// maximum emptiness-reduction-ratio until two groups remain; the larger
/// group becomes the index.
pub fn min_emptiness_split(df: &DataFrame, dims: &[usize]) -> Split {
    assert!(dims.len() >= 2);
    let mut groups: Vec<Vec<usize>> = dims.iter().map(|&d| vec![d]).collect();
    while groups.len() > 2 {
        // Find the pair of groups with the highest mean pairwise ERR.
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let mut s = 0.0;
                let mut cnt = 0.0;
                for &a in &groups[i] {
                    for &b in &groups[j] {
                        s += raw_err(df, a, b);
                        cnt += 1.0;
                    }
                }
                let mean = s / cnt;
                if mean > best.2 {
                    best = (i, j, mean);
                }
            }
        }
        let (i, j, _) = best;
        let merged = groups.remove(j);
        groups[i].extend(merged);
    }
    let (a, b) = (groups.remove(0), groups.remove(0));
    let (index, header) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    Split { index, header }.normalised()
}

/// **Balanced-Split**: cut the dimension list in half, first half to the
/// index — pivot tables are "often balanced in terms of width vs. height".
pub fn balanced_split(_df: &DataFrame, dims: &[usize]) -> Split {
    assert!(dims.len() >= 2);
    let mid = dims.len().div_ceil(2);
    Split { index: dims[..mid].to_vec(), header: dims[mid..].to_vec() }.normalised()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    /// sector → determined by company; year independent (the Fig. 7 shape).
    fn filings() -> DataFrame {
        let mut sector = Vec::new();
        let mut company = Vec::new();
        let mut year = Vec::new();
        let mut revenue = Vec::new();
        for c in 0..12 {
            for y in 0..3 {
                sector.push(Value::Str(format!("sec{}", c / 4)));
                company.push(Value::Str(format!("co{c}")));
                year.push(Value::Int(2006 + y));
                revenue.push(Value::Float((c * 100 + y) as f64));
            }
        }
        DataFrame::from_columns(vec![
            ("sector", sector),
            ("company", company),
            ("year", year),
            ("revenue", revenue),
        ])
        .unwrap()
    }

    #[test]
    fn affinity_groups_fd_columns_into_index() {
        let df = filings();
        let s = affinity_split(&df, &[0, 1, 2]);
        assert_eq!(s.index, vec![0, 1]);
        assert_eq!(s.header, vec![2]);
    }

    #[test]
    fn min_emptiness_matches_on_clean_fd() {
        let df = filings();
        let s = min_emptiness_split(&df, &[0, 1, 2]);
        assert_eq!(s.index, vec![0, 1]);
        assert_eq!(s.header, vec![2]);
    }

    #[test]
    fn type_rules_sends_numerics_to_header() {
        let df = filings();
        let s = type_rules_split(&df, &[0, 1, 2]);
        assert_eq!(s.index, vec![0, 1]);
        assert_eq!(s.header, vec![2]); // year is numeric
    }

    #[test]
    fn balanced_split_halves_in_order() {
        let df = filings();
        let s = balanced_split(&df, &[0, 1, 2]);
        assert_eq!(s.index, vec![0, 1]);
        assert_eq!(s.header, vec![2]);
        let s4 = balanced_split(&df, &[0, 1, 2, 3]);
        assert_eq!(s4.index.len(), 2);
    }

    #[test]
    fn splits_are_always_non_empty_partitions() {
        let df = filings();
        for f in [affinity_split, type_rules_split, min_emptiness_split, balanced_split] {
            let s = f(&df, &[0, 1, 2]);
            assert!(!s.index.is_empty() && !s.header.is_empty());
            let mut all: Vec<usize> = s.index.iter().chain(&s.header).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2]);
        }
    }

    #[test]
    fn all_string_dims_still_split_under_type_rules() {
        let df = filings();
        let s = type_rules_split(&df, &[0, 1]);
        assert_eq!(s.index.len(), 1);
        assert_eq!(s.header.len(), 1);
    }
}
