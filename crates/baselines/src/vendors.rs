//! Stand-ins for the anonymised commercial systems Vendor-A/B/C.
//!
//! The paper cannot name these systems (EULA) and treats them as black
//! boxes; what it does tell us is the *class* of algorithm each exhibits:
//! single-heuristic join-column ranking of varying sophistication
//! (Table 3), an always-inner join-type default (Table 5), and
//! cardinality/type-based GroupBy ranking (Table 6). These white-box
//! stand-ins implement exactly those behaviour classes — see DESIGN.md §1.

use crate::join::JoinBaseline;
use autosuggest_dataframe::ops::JoinType;
use autosuggest_dataframe::{DataFrame, DType};
use autosuggest_features::{join_features, JoinCandidate};

/// **Vendor-A** (the strongest commercial join recommender, 0.76 prec@1 in
/// Table 3): combines value overlap with key-ness and a type sanity check —
/// a well-engineered single-pass heuristic, but blind to left-ness and
/// range overlap.
pub struct VendorA;

impl JoinBaseline for VendorA {
    fn name(&self) -> &'static str {
        "Vendor-A"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        let f = join_features(left, right, cand);
        let type_bonus = if f.get("key_is_string") > 0.0 { 0.3 } else { 0.0 };
        f.get("containment_max") * f.get("distinct_ratio_max") + type_bonus
    }
}

/// **Vendor-B** (0.33 prec@1): matches columns by *name equality* first,
/// with raw overlap as the only fallback — the weakest scheme.
pub struct VendorB;

impl JoinBaseline for VendorB {
    fn name(&self) -> &'static str {
        "Vendor-B"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        let same_name = cand
            .left_cols
            .iter()
            .zip(&cand.right_cols)
            .all(|(&l, &r)| {
                left.column_at(l).name().to_lowercase()
                    == right.column_at(r).name().to_lowercase()
            });
        let f = join_features(left, right, cand);
        if same_name {
            1.0 + f.get("jaccard_similarity")
        } else {
            f.get("jaccard_similarity") * 0.5
        }
    }
}

/// **Vendor-C** (0.42 prec@1): plain maximum value overlap with a
/// key-uniqueness gate.
pub struct VendorC;

impl JoinBaseline for VendorC {
    fn name(&self) -> &'static str {
        "Vendor-C"
    }

    fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        let f = join_features(left, right, cand);
        if f.get("distinct_ratio_max") < 0.8 {
            return f.get("jaccard_similarity") * 0.2;
        }
        f.get("jaccard_similarity")
    }
}

/// The commercial join-type "predictor": every vendor defaults to
/// inner-join (Table 5's comparison point).
pub fn vendor_default_join_type(_left: &DataFrame, _right: &DataFrame) -> JoinType {
    JoinType::Inner
}

/// **Vendor-B GroupBy**: type-driven — string columns are dimensions,
/// numeric columns are measures, ties broken by position.
pub fn vendor_b_groupby_scores(df: &DataFrame) -> Vec<f64> {
    df.columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let type_score = match c.dtype() {
                DType::Str | DType::Bool => 1.0,
                DType::Date => 0.6,
                DType::Int => 0.3,
                _ => 0.0,
            };
            type_score - 0.01 * i as f64
        })
        .collect()
}

/// **Vendor-C GroupBy**: low-cardinality columns are dimensions, with a
/// mild type prior — close to Min-Cardinality but slightly type-aware.
pub fn vendor_c_groupby_scores(df: &DataFrame) -> Vec<f64> {
    df.columns()
        .iter()
        .map(|c| {
            let card = c.distinct_count().max(1) as f64;
            let type_bonus = if c.dtype() == DType::Float { -0.5 } else { 0.0 };
            1.0 / card + type_bonus
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "sector",
                vec![
                    Value::Str("a".into()),
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                ],
            ),
            ("year", vec![Value::Int(2006), Value::Int(2007), Value::Int(2006)]),
            (
                "revenue",
                vec![Value::Float(1.5), Value::Float(2.5), Value::Float(3.5)],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn vendor_b_join_rewards_equal_names() {
        let df = DataFrame::from_columns(vec![(
            "id",
            vec![Value::Str("x".into()), Value::Str("y".into())],
        )])
        .unwrap();
        let b = VendorB;
        let cand = JoinCandidate { left_cols: vec![0], right_cols: vec![0] };
        assert!(b.score(&df, &df.clone(), &cand) > 1.0);
    }

    #[test]
    fn vendor_default_is_inner() {
        let df = sample();
        assert_eq!(vendor_default_join_type(&df, &df), JoinType::Inner);
    }

    #[test]
    fn vendor_b_groupby_ranks_strings_first() {
        let s = vendor_b_groupby_scores(&sample());
        assert!(s[0] > s[1]);
        assert!(s[1] > s[2]);
    }

    #[test]
    fn vendor_c_groupby_ranks_low_cardinality_first() {
        let s = vendor_c_groupby_scores(&sample());
        assert!(s[0] > s[2]); // sector (2 distinct) above revenue (3 distinct float)
    }

    #[test]
    fn vendor_a_gates_on_keyness() {
        let keys = DataFrame::from_columns(vec![(
            "k",
            (0..10).map(Value::Int).collect(),
        )])
        .unwrap();
        let dups = DataFrame::from_columns(vec![(
            "k",
            (0..10).map(|i| Value::Int(i % 2)).collect(),
        )])
        .unwrap();
        let a = VendorA;
        let cand = JoinCandidate { left_cols: vec![0], right_cols: vec![0] };
        assert!(a.score(&keys, &keys.clone(), &cand) > a.score(&dups, &dups.clone(), &cand));
    }
}
