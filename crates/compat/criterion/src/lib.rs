//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short calibration pass sizes an
//! iteration batch to ~25 ms, then `sample_size` batches are timed and the
//! median / min / max per-iteration times are reported on stdout. No files
//! are written and no statistical machinery is pulled in — good enough to
//! compare configurations and catch order-of-magnitude regressions.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_BATCH: Duration = Duration::from_millis(25);
const DEFAULT_SAMPLES: usize = 12;

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure given to `iter`.
pub struct Bencher {
    samples: usize,
    /// Median, min, max per-iteration nanoseconds of the last run.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the target batch time?
        let cal_start = Instant::now();
        black_box(f());
        let one = cal_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (TARGET_BATCH.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        self.result = Some((median, min, max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, result: None };
    f(&mut bencher);
    match bencher.result {
        Some((median, min, max)) => println!(
            "{name:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        ),
        None => println!("{name:<48} (no measurement: iter was never called)"),
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), samples: DEFAULT_SAMPLES }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 500).to_string(), "fit/500");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
