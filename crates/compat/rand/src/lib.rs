//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`random`, `random_range`, `random_bool`), and the
//! slice helpers in [`seq`] (`shuffle` via `SliceRandom`, `choose` via
//! `IndexedRandom`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fully deterministic, and dependency-free. Streams do **not** match the
//! real `rand` crate's ChaCha12-based `StdRng`; everything downstream of a
//! seed in this repository treats the stream as an opaque deterministic
//! function of that seed, so only internal consistency matters.

/// Core trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (only the `seed_from_u64` entry point is used in
/// this workspace, plus `from_seed` for completeness).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: seeds the main generator and whitens user seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any input, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0, 0, 0, 0] {
                return StdRng::from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be sampled uniformly from a range. Mirrors rand's
/// `SampleUniform`: the bound on [`Rng::random_range`]'s return type,
/// combined with the *single generic* `Range<T>: SampleRange<T>` impl
/// below, is what lets inference pin `T` at call sites like
/// `&names[rng.random_range(0..5)]` (per-type range impls would leave the
/// literal's type variable free and fall back to `i32`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range in random_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in random_range");
                let u = f64::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// The user-facing extension trait (`rand` 0.9 method names).
pub trait Rng: RngCore {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// In-place slice operations (`rand` 0.9 keeps `shuffle` here).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low, matching the classic formulation.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Index-based random selection (`choose` moved here in `rand` 0.9).
    pub trait IndexedRandom {
        type Output;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5..10usize);
            assert!((5..10).contains(&v));
            let w = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
        let pick = *v.choose(&mut rng).unwrap();
        assert!(pick < 50);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
