//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`Value`] (with `Number` and object `Map`), [`from_str`] into `Value`,
//! [`to_string`] over the serde shim's `Serialize`, and the [`json!`]
//! macro.
//!
//! Objects use a `BTreeMap`, so key order is sorted and rendering is
//! deterministic — `corpus::filter` uses serialised params as dedup keys.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation (sorted keys — deterministic rendering).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integer-preserving like `serde_json::Number`.
#[derive(Debug, Clone, PartialEq)]
pub struct Number {
    repr: NumberRepr,
}

#[derive(Debug, Clone, PartialEq)]
enum NumberRepr {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            NumberRepr::Int(i) => Some(i),
            NumberRepr::UInt(u) => i64::try_from(u).ok(),
            NumberRepr::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            NumberRepr::Int(i) => u64::try_from(i).ok(),
            NumberRepr::UInt(u) => Some(u),
            NumberRepr::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.repr {
            NumberRepr::Int(i) => Some(i as f64),
            NumberRepr::UInt(u) => Some(u as f64),
            NumberRepr::Float(f) => Some(f),
        }
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            NumberRepr::Int(i) => write!(f, "{i}"),
            NumberRepr::UInt(u) => write!(f, "{u}"),
            NumberRepr::Float(v) => {
                let mut s = String::new();
                float_to_json(v, &mut s);
                f.write_str(&s)
            }
        }
    }
}

fn float_to_json(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        let has_marker = s.contains('.') || s.contains('e') || s.contains('E');
        out.push_str(&s);
        if !has_marker {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

macro_rules! impl_number_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                Number { repr: NumberRepr::Int(v as i64) }
            }
        }
    )*};
}
impl_number_from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number { repr: NumberRepr::UInt(v) }
    }
}

impl From<usize> for Number {
    fn from(v: usize) -> Number {
        Number { repr: NumberRepr::UInt(v as u64) }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number { repr: NumberRepr::Float(v) }
    }
}

impl From<f32> for Number {
    fn from(v: f32) -> Number {
        Number { repr: NumberRepr::Float(v as f64) }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl serde::Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        self.write_compact(out);
    }
}

impl serde::Deserialize for Value {}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            None => Value::Null,
            Some(inner) => inner.into(),
        }
    }
}

macro_rules! impl_value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}
impl_value_from_number!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// A parse error with position information.
#[derive(Debug, Clone)]
pub struct Error {
    line: usize,
    column: usize,
    message: String,
}

impl Error {
    pub fn line(&self) -> usize {
        self.line
    }

    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {} column {}", self.message, self.line, self.column)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error { line, column, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from(f)))
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Serialise any `serde::Serialize` value to a compact JSON string.
#[allow(clippy::unnecessary_wraps)] // signature mirrors serde_json
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::to_json_string(value))
}

/// By-reference conversion used by the [`json!`] macro, so interpolated
/// expressions are not moved out of (matches `serde_json`, whose macro
/// routes through `to_value(&expr)`).
#[doc(hidden)]
pub trait ToJsonValue {
    fn to_json_value(&self) -> Value;
}

impl<T: Clone + Into<Value>> ToJsonValue for T {
    fn to_json_value(&self) -> Value {
        self.clone().into()
    }
}

/// Build a [`Value`] from JSON-like syntax (subset of `serde_json::json!`:
/// literals, arrays, objects with string-literal keys, interpolated
/// expressions).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_elems!(__arr, $($tt)*);
            $crate::Value::Array(__arr)
        }
    }};
    ({ $($tt:tt)* }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_entries!(__map, $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::ToJsonValue::to_json_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($arr:ident,) => {};
    ($arr:ident) => {};
    ($arr:ident, null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::json_elems!($arr $(, $($rest)*)?);
    };
    ($arr:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_elems!($arr $(, $($rest)*)?);
    };
    ($arr:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_elems!($arr $(, $($rest)*)?);
    };
    ($arr:ident, $value:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::ToJsonValue::to_json_value(&$value));
        $crate::json_elems!($arr $(, $($rest)*)?);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident,) => {};
    ($map:ident) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_entries!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_entries!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::ToJsonValue::to_json_value(&$value));
        $crate::json_entries!($map $(, $($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("42").unwrap().as_i64(), Some(42));
        assert_eq!(from_str("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(from_str("\"hi\\n\"").unwrap().as_str(), Some("hi\n"));
        let arr = from_str("[1, 2, 3]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        let obj = from_str(r#"{"a": {"b": [1, null]}}"#).unwrap();
        assert!(obj.is_object());
        assert_eq!(obj.get("a").unwrap().get("b").unwrap().get_index(1), Some(&Value::Null));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_str("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));
        assert!(from_str("{not json").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("42 junk").is_err());
    }

    #[test]
    fn roundtrips_through_display() {
        let text = r#"{"a":[1,2.5,"x",null,true],"b":{"c":false}}"#;
        let value = from_str(text).unwrap();
        assert_eq!(value.to_string(), text);
        assert_eq!(from_str(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn json_macro_builds_nested_documents() {
        let name = "ada".to_string();
        let doc = json!({
            "id": 7,
            "profile": {"name": name, "tags": ["a", "b"]},
            "score": (2.0_f64) * 1.5 + 3.0,
            "flag": true,
            "nothing": null,
        });
        assert_eq!(doc.get("id").unwrap().as_i64(), Some(7));
        assert_eq!(
            doc.get("profile").unwrap().get("name").unwrap().as_str(),
            Some("ada")
        );
        assert_eq!(doc.get("score").unwrap().as_f64(), Some(6.0));
        assert_eq!(doc.get("nothing"), Some(&Value::Null));
        assert_eq!(json!(42).as_i64(), Some(42));
        assert_eq!(json!([1, 2]).as_array().unwrap().len(), 2);
        assert_eq!(json!([{ "a": 1 }, { "a": 2 }]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn to_string_uses_serde_shim() {
        let records = vec![json!({"a": 1}), json!({"a": 2})];
        assert_eq!(to_string(&records).unwrap(), r#"[{"a":1},{"a":2}]"#);
    }
}
