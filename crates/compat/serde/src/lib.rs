//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real crates.io `serde` is unreachable in the build environment, so
//! this shim provides the two derive-able traits with a **JSON-direct**
//! data model: [`Serialize`] renders straight into a JSON string (consumed
//! by the sibling `serde_json` shim's `to_string`), and [`Deserialize`] is
//! a marker — nothing in the workspace deserialises into typed values; all
//! parsing goes through `serde_json::Value`.
//!
//! Determinism contract: every implementation here (including the map
//! implementations, which sort hash-map entries by key) produces identical
//! output for identical values, so serialised forms are safe to use as
//! dedup keys — `corpus::filter` relies on this.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Serialise `self` as JSON onto `out`.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait: typed deserialisation is not used in this workspace.
pub trait Deserialize: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Escape and quote a string as a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialise a value to a standalone JSON string (convenience used by the
/// `serde_json` shim and tests).
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}
impl Deserialize for u64 {}

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}
impl Deserialize for u128 {}

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // Keep a float marker so integral floats stay distinguishable from
        // integers ("1.0", not "1") — serde_json does the same.
        let s = format!("{v}");
        let has_marker = s.contains('.') || s.contains('e') || s.contains('E');
        out.push_str(&s);
        if !has_marker {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        write_float(*self, out);
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        write_float(*self as f64, out);
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_string(self.encode_utf8(&mut buf), out);
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}
impl Deserialize for () {}

// ---------------------------------------------------------------------------
// Composite implementations
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    let _ = first;
                    self.$idx.serialize_json(out);
                )+
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Render a serialised key as a JSON object key (JSON keys must be
/// strings; non-string keys are re-quoted from their JSON rendering).
fn write_map_key(key_json: &str, out: &mut String) {
    if key_json.starts_with('"') {
        out.push_str(key_json);
    } else {
        write_json_string(key_json, out);
    }
}

fn write_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    sort: bool,
    out: &mut String,
) {
    let mut rendered: Vec<(String, &'a V)> =
        entries.map(|(k, v)| (to_json_string(k), v)).collect();
    if sort {
        // Hash maps iterate in arbitrary order; sort for determinism.
        rendered.sort_by(|a, b| a.0.cmp(&b.0));
    }
    out.push('{');
    for (i, (k, v)) in rendered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_map_key(k, out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        write_map(self.iter(), true, out);
    }
}
impl<K: Deserialize, V: Deserialize, S> Deserialize for HashMap<K, V, S> {}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        write_map(self.iter(), false, out);
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_json(&self, out: &mut String) {
        let mut rendered: Vec<String> = self.iter().map(|v| to_json_string(v)).collect();
        rendered.sort();
        out.push('[');
        for (i, v) in rendered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(v);
        }
        out.push(']');
    }
}
impl<T: Deserialize, S> Deserialize for HashSet<T, S> {}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for BTreeSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        assert_eq!(to_json_string(&42i64), "42");
        assert_eq!(to_json_string(&true), "true");
        assert_eq!(to_json_string(&1.5f64), "1.5");
        assert_eq!(to_json_string(&1.0f64), "1.0");
        assert_eq!(to_json_string(&f64::NAN), "null");
        assert_eq!(to_json_string("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn composites_render_as_json() {
        assert_eq!(to_json_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json_string(&Some("x".to_string())), "\"x\"");
        assert_eq!(to_json_string(&None::<String>), "null");
        assert_eq!(
            to_json_string(&("a".to_string(), "b".to_string())),
            "[\"a\",\"b\"]"
        );
    }

    #[test]
    fn hash_maps_serialize_deterministically() {
        let mut m = HashMap::new();
        for i in 0..20 {
            m.insert(format!("k{i:02}"), i);
        }
        let a = to_json_string(&m);
        let b = to_json_string(&m.clone());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"k00\":0,"), "sorted keys: {a}");
    }

    #[test]
    fn non_string_map_keys_are_quoted() {
        let mut m = BTreeMap::new();
        m.insert(5u64, "x");
        assert_eq!(to_json_string(&m), "{\"5\":\"x\"}");
    }
}
