//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! No `syn`/`quote` (the registry is unreachable), so the item is parsed
//! directly from the `proc_macro::TokenStream`. Supported shapes — exactly
//! what this workspace derives on:
//!
//! * structs with named fields → JSON objects
//! * tuple structs → newtype transparency (arity 1) or JSON arrays
//! * unit structs → `null`
//! * enums with unit / tuple / struct variants → serde's externally-tagged
//!   JSON form (`"Variant"`, `{"Variant": [..]}`, `{"Variant": {..}}`)
//!
//! Generic items are intentionally unsupported (none exist in the
//! workspace) and produce a compile error rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum ItemShape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple { arity: usize },
    Named { fields: Vec<String> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

struct Item {
    name: String,
    shape: ItemShape,
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(crate)`, ...) at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count top-level comma-separated items in a type/field list, tracking
/// angle-bracket depth so `HashMap<String, String>` counts as one.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut saw_any = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    saw_any = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_any = true;
    }
    if saw_any {
        items += 1;
    }
    items
}

/// Parse `name: Type, ...` named-field lists, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        i += 1;
        // Expect ':' then the type; skip to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic item `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: ItemShape::NamedStruct { fields: parse_named_fields(g.stream()) },
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item { name, shape: ItemShape::TupleStruct { arity: count_top_level_items(&inner) } })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item { name, shape: ItemShape::UnitStruct })
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => {
            let Some(TokenTree::Group(body)) = tokens.get(i) else {
                return Err("expected enum body".into());
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < body_tokens.len() {
                j = skip_attrs_and_vis(&body_tokens, j);
                let Some(TokenTree::Ident(vname)) = body_tokens.get(j) else { break };
                let vname = vname.to_string();
                j += 1;
                let shape = match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        VariantShape::Named { fields: parse_named_fields(g.stream()) }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantShape::Tuple { arity: count_top_level_items(&inner) }
                    }
                    _ => VariantShape::Unit,
                };
                // Skip a possible discriminant (`= expr`) and the comma.
                while j < body_tokens.len() {
                    if let TokenTree::Punct(p) = &body_tokens[j] {
                        if p.as_char() == ',' {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                variants.push(Variant { name: vname, shape });
            }
            Ok(Item { name, shape: ItemShape::Enum { variants } })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn push_literal(code: &mut String, text: &str) {
    code.push_str("out.push_str(");
    code.push_str(&format!("{text:?}"));
    code.push_str(");");
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match &item.shape {
        ItemShape::NamedStruct { fields } => {
            if fields.is_empty() {
                push_literal(&mut body, "{}");
            } else {
                for (i, f) in fields.iter().enumerate() {
                    let prefix = if i == 0 { format!("{{\"{f}\":") } else { format!(",\"{f}\":") };
                    push_literal(&mut body, &prefix);
                    body.push_str(&format!("::serde::Serialize::serialize_json(&self.{f}, out);"));
                }
                push_literal(&mut body, "}");
            }
        }
        ItemShape::TupleStruct { arity } => {
            if *arity == 1 {
                body.push_str("::serde::Serialize::serialize_json(&self.0, out);");
            } else {
                push_literal(&mut body, "[");
                for i in 0..*arity {
                    if i > 0 {
                        push_literal(&mut body, ",");
                    }
                    body.push_str(&format!("::serde::Serialize::serialize_json(&self.{i}, out);"));
                }
                push_literal(&mut body, "]");
            }
        }
        ItemShape::UnitStruct => push_literal(&mut body, "null"),
        ItemShape::Enum { variants } => {
            body.push_str("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        body.push_str(&format!("Self::{vn} => {{"));
                        push_literal(&mut body, &format!("\"{vn}\""));
                        body.push_str("},");
                    }
                    VariantShape::Tuple { arity } => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!("Self::{vn}({}) => {{", binds.join(",")));
                        if *arity == 1 {
                            push_literal(&mut body, &format!("{{\"{vn}\":"));
                            body.push_str("::serde::Serialize::serialize_json(__f0, out);");
                            push_literal(&mut body, "}");
                        } else {
                            push_literal(&mut body, &format!("{{\"{vn}\":["));
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    push_literal(&mut body, ",");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, out);"
                                ));
                            }
                            push_literal(&mut body, "]}");
                        }
                        body.push_str("},");
                    }
                    VariantShape::Named { fields } => {
                        body.push_str(&format!("Self::{vn} {{ {} }} => {{", fields.join(",")));
                        push_literal(&mut body, &format!("{{\"{vn}\":{{"));
                        for (i, f) in fields.iter().enumerate() {
                            let prefix =
                                if i == 0 { format!("\"{f}\":") } else { format!(",\"{f}\":") };
                            push_literal(&mut body, &prefix);
                            body.push_str(&format!(
                                "::serde::Serialize::serialize_json({f}, out);"
                            ));
                        }
                        push_literal(&mut body, "}}");
                        body.push_str("},");
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{ {body} }}\n\
         }}",
        name = item.name,
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error tokens"),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl ::serde::Deserialize for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error tokens"),
    }
}
