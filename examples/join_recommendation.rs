//! The Fig. 5 scenario: recommend join columns for two book tables where
//! naive value-overlap picks the wrong (integer) pair.
//!
//! ```text
//! cargo run --release --example join_recommendation
//! ```

use auto_suggest::baselines::join::{JoinBaseline, MaxOverlap};
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::dataframe::{DataFrame, Value};
use auto_suggest::features::{enumerate_join_candidates, CandidateParams};

fn books() -> (DataFrame, DataFrame) {
    let left = DataFrame::from_columns(vec![
        (
            "title",
            ["The Overstory", "Educated", "Becoming", "Circe", "Milkman"]
                .iter()
                .map(|s| Value::Str((*s).into()))
                .collect(),
        ),
        ("rank_on_list", (1..=5).map(Value::Int).collect()),
        (
            "weeks",
            vec![Value::Int(3), Value::Int(11), Value::Int(29), Value::Int(7), Value::Int(2)],
        ),
    ])
    .unwrap();
    let right = DataFrame::from_columns(vec![
        (
            "title_on_list",
            ["Becoming", "Circe", "The Overstory", "There There"]
                .iter()
                .map(|s| Value::Str((*s).into()))
                .collect(),
        ),
        ("weeks_on_list", (1..=4).map(Value::Int).collect()),
        (
            "publisher",
            ["Crown", "Little Brown", "Norton", "Knopf"]
                .iter()
                .map(|s| Value::Str((*s).into()))
                .collect(),
        ),
    ])
    .unwrap();
    (left, right)
}

fn main() {
    println!("Training Auto-Suggest...");
    let system = AutoSuggest::train(AutoSuggestConfig::fast(11));
    let model = system.models.join.as_ref().expect("join model");

    let (left, right) = books();
    println!("\nLeft table:\n{left}\nRight table:\n{right}");

    let cands = enumerate_join_candidates(&left, &right, &CandidateParams::default());
    println!("{} join candidates survive pruning", cands.len());

    println!("\nAuto-Suggest ranking:");
    for s in model.suggest(&left, &right, 3) {
        println!("  {:?} = {:?}  (score {:.3})", s.left_cols, s.right_cols, s.score);
    }

    // The Fig. 5 trap: weeks_on_list {1..4} is fully contained in
    // rank_on_list {1..5}, so overlap alone prefers the integer pair.
    let overlap = MaxOverlap;
    let order = overlap.rank(&left, &right, &cands);
    let top = &cands[order[0]];
    println!(
        "\nmax-overlap instead picks: {:?} = {:?}",
        top.left_cols
            .iter()
            .map(|&i| left.column_at(i).name())
            .collect::<Vec<_>>(),
        top.right_cols
            .iter()
            .map(|&i| right.column_at(i).name())
            .collect::<Vec<_>>(),
    );
    println!("(the learned model recognises string titles as the intended key)");
}
