//! A "predictive transformation" assistant (§5): watch a pipeline evolve
//! and suggest the next operator at every step, like Trifacta's predictive
//! interaction or Salesforce's smart suggestions.
//!
//! ```text
//! cargo run --release --example next_op_assistant
//! ```

use auto_suggest::core::nextop::single_op_scores;
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::corpus::OpKind;

fn main() {
    println!("Training Auto-Suggest...");
    let system = AutoSuggest::train(AutoSuggestConfig::fast(31));
    let groupby = system.models.groupby.as_ref().expect("groupby model");
    let compat = system
        .models
        .pivot
        .as_ref()
        .expect("pivot model")
        .compatibility();

    // Re-drive one held-out pipeline step by step.
    let example = system
        .test
        .nextop
        .iter()
        .max_by_key(|e| e.prefix.len())
        .expect("test pipelines exist");
    println!(
        "\nA held-out pipeline with {} prior steps:",
        example.prefix.len()
    );
    for (i, &op) in example.prefix.iter().enumerate() {
        println!("  step {}: {}", i + 1, OpKind::SEQUENCE_OPS[op]);
    }

    println!("\nSingle-operator scores for the current table:");
    for (op, score) in OpKind::SEQUENCE_OPS.iter().zip(&example.table_scores) {
        println!("  {op:<10} {score:.3}");
    }

    let ranked = system
        .models
        .nextop_full
        .predict_ranked(&example.prefix, &example.table_scores);
    println!("\nPredicted next operators (most likely first):");
    for (rank, &op) in ranked.iter().take(3).enumerate() {
        let marker = if op == example.label { "  <- what the author actually did" } else { "" };
        println!("  {}. {}{}", rank + 1, OpKind::SEQUENCE_OPS[op], marker);
    }

    // The table-shape signal in isolation: a pivot-shaped table begs to be
    // unpivoted even with no history at all.
    let wide_case = &system.test.melt[0];
    let scores = single_op_scores(&wide_case.inputs[0], groupby, compat);
    let top = OpKind::SEQUENCE_OPS
        [scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("seven scores")];
    println!(
        "\nFor a fresh {}-column pivot-shaped table, the table-only signal suggests: {top}",
        wide_case.inputs[0].num_columns()
    );
}
