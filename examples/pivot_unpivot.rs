//! The paper's running example (Figs. 6–12): pivot the SEC-filings table
//! with AMPT, inspect the affinity graph, then unpivot the result with
//! CMUT.
//!
//! ```text
//! cargo run --release --example pivot_unpivot
//! ```

use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::dataframe::ops::{melt, pivot_table, Agg};
use auto_suggest::dataframe::{DataFrame, Value};

/// Fig. 7's input: sector/ticker/company with FDs, by year and quarter.
fn filings() -> DataFrame {
    let companies = [
        ("Aerospace", "AJRD", "Aerojet Rocketdyne"),
        ("Aerospace", "ATRO", "Astronics Corp"),
        ("Business Services", "HHS", "Harte-Hanks Inc"),
        ("Business Services", "NCMI", "Natl Cinemedia"),
        ("Consumer Staples", "YTEN", "Yield10 Bio"),
        ("Utilities", "YORW", "York Water Co"),
    ];
    let mut rows = Vec::new();
    for (i, (sector, ticker, company)) in companies.iter().enumerate() {
        for year in 2006..=2008 {
            for q in 1..=4 {
                rows.push(vec![
                    Value::Str((*sector).into()),
                    Value::Str((*ticker).into()),
                    Value::Str((*company).into()),
                    Value::Int(year),
                    Value::Str(format!("Q{q}")),
                    Value::Float(400.0 + 37.0 * i as f64 + 11.0 * (year - 2006) as f64 + q as f64),
                ]);
            }
        }
    }
    DataFrame::from_rows(
        &["sector", "ticker", "company", "year", "quarter", "revenue"],
        rows,
    )
    .unwrap()
}

fn main() {
    println!("Training Auto-Suggest...");
    let system = AutoSuggest::train(AutoSuggestConfig::fast(23));
    let pivot = system.models.pivot.as_ref().expect("pivot model");
    let unpivot = system.models.unpivot.as_ref().expect("unpivot model");

    let df = filings();
    println!("\nInput (Fig. 7 left):\n{}", df.head(6));

    // The user selects the dimensions; AMPT decides index vs. header.
    let dims = [0usize, 1, 2, 3]; // sector, ticker, company, year
    println!("Affinity graph over the selected dimensions:");
    let compat = pivot.compatibility();
    for i in 0..dims.len() {
        for j in (i + 1)..dims.len() {
            println!(
                "  a({}, {}) = {:+.2}",
                df.column_at(dims[i]).name(),
                df.column_at(dims[j]).name(),
                compat.score(&df, dims[i], dims[j]),
            );
        }
    }
    let suggestion = pivot.suggest(&df, &dims).expect("valid split");
    println!(
        "\nAMPT split: index = {:?}, header = {:?} (objective {:.2})",
        suggestion.index, suggestion.header, suggestion.objective
    );

    // Materialise the recommended pivot.
    let index: Vec<&str> = suggestion.index.iter().map(String::as_str).collect();
    let header: Vec<&str> = suggestion.header.iter().map(String::as_str).collect();
    let pivoted = pivot_table(&df, &index, &header, "revenue", Agg::Sum).unwrap();
    println!("\nPivot-table (Fig. 7 right):\n{}", pivoted.head(6));

    // And back: CMUT selects the columns to collapse.
    let sel = unpivot.suggest(&pivoted).expect("collapse selection");
    println!(
        "CMUT collapse set (Fig. 11): {:?} (objective {:.2})",
        sel.collapse, sel.objective
    );
    let ids: Vec<&str> = pivoted
        .column_names()
        .into_iter()
        .filter(|n| !sel.collapse.iter().any(|c| c == n))
        .collect();
    let value_vars: Vec<&str> = sel.collapse.iter().map(String::as_str).collect();
    let long = melt(&pivoted, &ids, &value_vars, "year", "revenue").unwrap();
    println!("\nUnpivoted back to tabular form:\n{}", long.head(6));
}
