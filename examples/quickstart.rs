//! Quickstart: train the full Auto-Suggest system on a (small) synthetic
//! notebook corpus and ask it for recommendations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};

fn main() {
    println!("Training Auto-Suggest on a small synthetic corpus...");
    let system = AutoSuggest::train(AutoSuggestConfig::fast(7));
    println!(
        "  replayed {} notebooks, kept {} invocations after filtering\n",
        system.reports.len(),
        system.filter_stats.kept
    );

    // 1. Join recommendation (the Fig. 1 experience).
    let join = system.models.join.as_ref().expect("join model");
    let case = &system.test.join[0];
    println!("Input tables:\n{}\n{}", case.inputs[0].head(4), case.inputs[1].head(4));
    println!("Top join suggestions:");
    for s in join.suggest(&case.inputs[0], &case.inputs[1], 3) {
        println!("  {:?} = {:?}  (score {:.3})", s.left_cols, s.right_cols, s.score);
    }

    // 2. GroupBy recommendation.
    let groupby = system.models.groupby.as_ref().expect("groupby model");
    let gcase = &system.test.groupby[0];
    println!("\nGroupBy ranking for a {}-column table:", gcase.inputs[0].num_columns());
    for s in groupby.suggest(&gcase.inputs[0]).into_iter().take(4) {
        println!("  {:<14} dimension-ness {:.3}", s.column, s.score);
    }

    // 3. Unpivot recommendation.
    let unpivot = system.models.unpivot.as_ref().expect("unpivot model");
    let mcase = &system.test.melt[0];
    if let Some(s) = unpivot.suggest(&mcase.inputs[0]) {
        println!(
            "\nUnpivot: collapse {} of {} columns (objective {:.2}): {:?}",
            s.collapse.len(),
            mcase.inputs[0].num_columns(),
            s.objective,
            &s.collapse[..s.collapse.len().min(6)]
        );
    }

    // 4. Next-operator prediction.
    let ex = &system.test.nextop[0];
    let next = system.models.nextop_full.predict(&ex.prefix, &ex.table_scores);
    println!("\nAfter {} pipeline steps, predicted next operator: {next}", ex.prefix.len());
}
