//! Replay instrumentation on the Fig. 4 pipeline: two reads → merge →
//! pivot + groupby, with a hard-coded absolute path the engine must repair.
//!
//! ```text
//! cargo run --release --example notebook_replay
//! ```

use auto_suggest::corpus::lang::{Expr, Stmt};
use auto_suggest::corpus::{Cell, DatasetRepository, Notebook, ReplayEngine};
use auto_suggest::dataframe::ops::{Agg, JoinType};

fn main() {
    let mut nb = Notebook::new("fig4-demo", "titanic");
    nb.add_file(
        "data/passengers.csv",
        "passenger_id,name,klass\n1,Allen,1\n2,Braund,3\n3,Cumings,1\n4,Futrelle,1\n5,Heikkinen,3\n",
    );
    nb.add_file(
        "data/fares.csv",
        "pid,year,fare\n1,1912,211.5\n2,1912,7.25\n3,1912,71.28\n4,1912,53.1\n5,1912,7.92\n",
    );

    nb.push_cell(Cell::code(vec![Stmt::Import { package: "pandas".into() }]));
    // Hard-coded author path (§3.2): replay resolves it by basename search.
    nb.push_cell(Cell::code(vec![Stmt::Assign {
        var: "info".into(),
        expr: Expr::ReadCsv { path: "D:\\kaggle\\passengers.csv".into() },
    }]));
    nb.push_cell(Cell::code(vec![Stmt::Assign {
        var: "fares".into(),
        expr: Expr::ReadCsv { path: "data/fares.csv".into() },
    }]));
    nb.push_cell(Cell::code(vec![Stmt::Assign {
        var: "psg".into(),
        expr: Expr::Merge {
            left: "info".into(),
            right: "fares".into(),
            left_on: vec!["passenger_id".into()],
            right_on: vec!["pid".into()],
            how: JoinType::Inner,
        },
    }]));
    nb.push_cell(Cell::code(vec![Stmt::Assign {
        var: "by_class".into(),
        expr: Expr::Pivot {
            frame: "psg".into(),
            index: vec!["klass".into()],
            header: vec!["year".into()],
            values: "fare".into(),
            agg: Agg::Mean,
        },
    }]));
    nb.push_cell(Cell::code(vec![Stmt::Assign {
        var: "totals".into(),
        expr: Expr::GroupBy {
            frame: "psg".into(),
            keys: vec!["klass".into()],
            aggs: vec![("fare".into(), Agg::Sum)],
        },
    }]));

    println!("Notebook source:");
    for (i, cell) in nb.cells.iter().enumerate() {
        println!("--- cell {i} ---\n{}", cell.source());
    }

    let engine = ReplayEngine::new(DatasetRepository::new());
    let report = engine.replay(&nb);
    println!("\nReplay outcome: {:?}", report.outcome);
    println!("Files recovered: {:?}", report.files_recovered);

    println!("\nInstrumented invocations:");
    for inv in &report.invocations {
        println!(
            "  cell {} {:<8} inputs {:?} -> {} rows x {} cols (hash {:016x})",
            inv.cell_index,
            inv.op.to_string(),
            inv.inputs.iter().map(|t| t.num_rows()).collect::<Vec<_>>(),
            inv.output_rows,
            inv.output_cols,
            inv.output_hash,
        );
    }

    println!("\nData-flow graph (Fig. 4):");
    for e in report.flow.edges() {
        println!(
            "  step {}: {:?} --{}-> {:016x}",
            e.step,
            e.inputs.iter().map(|h| format!("{h:016x}")).collect::<Vec<_>>(),
            e.op,
            e.output,
        );
    }
    println!("\nOperator sequence: {:?}", report.flow.op_sequence());
}
